#ifndef RECSTACK_PROFILE_KERNEL_PROFILE_H_
#define RECSTACK_PROFILE_KERNEL_PROFILE_H_

/**
 * @file
 * KernelProfile: the platform-independent workload descriptor that an
 * operator execution emits and that the CPU microarchitecture
 * simulator and the GPU analytical model consume.
 *
 * The profile describes *work*, not instructions: flops, byte streams
 * with access patterns, branch behaviour, and code footprint. Each
 * platform model lowers the work to its own instruction/transaction
 * counts (e.g. AVX-2 vs AVX-512 lane width), which is exactly how the
 * paper's Broadwell-vs-Cascade-Lake retired-instruction gap (Fig. 11)
 * arises.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace recstack {

/** Spatial pattern of a memory stream. */
enum class AccessPattern {
    kSequential,  ///< dense linear sweep over the footprint
    kStrided,     ///< constant stride (strideBytes) between chunks
    kRandom       ///< random chunk selection over the footprint
};

/**
 * One logical memory stream of an operator: @c accesses touches of
 * @c chunkBytes contiguous bytes each, laid out over a region of
 * @c footprintBytes identified by @c region.
 *
 * Regions are named so cache state is shared across operators and
 * batches that touch the same buffer (embedding tables being the
 * important case).
 */
struct MemStream {
    std::string region;            ///< backing-buffer identity
    AccessPattern pattern = AccessPattern::kSequential;
    uint64_t accesses = 0;         ///< number of chunk touches
    uint64_t chunkBytes = 64;      ///< contiguous bytes per touch
    uint64_t footprintBytes = 0;   ///< region size
    uint64_t strideBytes = 0;      ///< for kStrided
    bool isWrite = false;
    double zipfExponent = 0.0;     ///< skew of kRandom chunk choice
    double mlp = 4.0;              ///< memory-level parallelism of misses

    uint64_t totalBytes() const { return accesses * chunkBytes; }
};

/**
 * One logical branch population: @c count dynamic branches whose
 * outcome stream has long-run bias @c takenProbability and
 * data-dependence @c randomness (0 = perfectly periodic loop branch,
 * 1 = i.i.d. coin flips at the given bias).
 */
struct BranchStream {
    uint64_t count = 0;
    double takenProbability = 1.0;
    double randomness = 0.0;
    /// Loop-control branches of vectorized loops: wider SIMD executes
    /// fewer iterations, so the dynamic count shrinks with lane
    /// width. Data-dependent branches (embedding segments, dispatch)
    /// do not scale.
    bool scalesWithSimd = false;
};

/**
 * Abstract description of one operator execution.
 */
struct KernelProfile {
    std::string opType;            ///< Caffe2-style operator name
    std::string opName;            ///< instance name within the net

    /// Vectorizable fused-multiply-add flops (2 flops per FMA lane).
    uint64_t fmaFlops = 0;
    /// Other vectorizable element operations (copy/relu/add...), in
    /// elements (fp32 lanes).
    uint64_t vecElemOps = 0;
    /// Scalar bookkeeping micro-ops (address math, loop control that
    /// is not counted as a branch, framework glue inside the kernel).
    uint64_t scalarOps = 0;
    /// Scalar loop-bookkeeping ops of vectorized loops; these shrink
    /// with SIMD width (half the iterations on AVX-512).
    uint64_t simdScalableOps = 0;
    /// Vector-element loads re-reading cache-resident data (register-
    /// blocked GEMM operand reloads). They occupy load ports and
    /// count as retired AVX memory uops but add no new cache traffic.
    uint64_t reloadLoadElems = 0;

    std::vector<MemStream> streams;
    std::vector<BranchStream> branches;

    /// Static code bytes of the kernel's hot region. Distinct operator
    /// *instances* with distinct immediate operands (the paper's DIN
    /// local-activation case) must report distinct code via unique
    /// codeRegion names.
    uint64_t codeFootprintBytes = 0;
    std::string codeRegion;        ///< identity of the code (for L1I reuse)
    /// Dynamic executions of the hot region (loop trip count); used to
    /// weight frontend supply needs.
    uint64_t codeIterations = 1;

    /// Internally serialized phases of the kernel (a fused GRU has one
    /// per timestep): an accelerator cannot parallelize across them.
    uint64_t serialSteps = 1;

    /// Output-matrix width of a GEMM-shaped kernel (0 when not a
    /// GEMM). Narrow outputs (DIN's 36-wide local activation units)
    /// underutilize GPU GEMM pipelines regardless of batch size.
    uint64_t gemmWidth = 0;

    /// Scalar micro-ops of per-operator framework dispatch (graph walk,
    /// type checks, allocator). Dominates tiny-operator models.
    uint64_t dispatchOps = 0;
    /// Code bytes of the framework dispatch path (cold, shared region).
    uint64_t dispatchCodeBytes = 0;

    /** Total dynamic branch count across all streams. */
    uint64_t totalBranches() const;
    /** Total bytes read / written. */
    uint64_t bytesRead() const;
    uint64_t bytesWritten() const;

    /** Merge another profile's work into this one (for fused views). */
    void accumulate(const KernelProfile& other);
};

}  // namespace recstack

#endif  // RECSTACK_PROFILE_KERNEL_PROFILE_H_
