#include "profile/kernel_profile.h"

namespace recstack {

uint64_t
KernelProfile::totalBranches() const
{
    uint64_t n = 0;
    for (const auto& b : branches) {
        n += b.count;
    }
    return n;
}

uint64_t
KernelProfile::bytesRead() const
{
    uint64_t n = 0;
    for (const auto& s : streams) {
        if (!s.isWrite) {
            n += s.totalBytes();
        }
    }
    return n;
}

uint64_t
KernelProfile::bytesWritten() const
{
    uint64_t n = 0;
    for (const auto& s : streams) {
        if (s.isWrite) {
            n += s.totalBytes();
        }
    }
    return n;
}

void
KernelProfile::accumulate(const KernelProfile& other)
{
    fmaFlops += other.fmaFlops;
    vecElemOps += other.vecElemOps;
    scalarOps += other.scalarOps;
    simdScalableOps += other.simdScalableOps;
    reloadLoadElems += other.reloadLoadElems;
    dispatchOps += other.dispatchOps;
    dispatchCodeBytes += other.dispatchCodeBytes;
    codeFootprintBytes += other.codeFootprintBytes;
    codeIterations += other.codeIterations;
    streams.insert(streams.end(), other.streams.begin(),
                   other.streams.end());
    branches.insert(branches.end(), other.branches.begin(),
                    other.branches.end());
}

}  // namespace recstack
