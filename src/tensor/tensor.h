#ifndef RECSTACK_TENSOR_TENSOR_H_
#define RECSTACK_TENSOR_TENSOR_H_

/**
 * @file
 * Dense tensor container used throughout the inference framework.
 *
 * recstack tensors are deliberately simple: contiguous row-major
 * storage, three element types (the only ones recommendation inference
 * needs: fp32 activations/weights, int32 lengths, int64 indices), and
 * no autograd. Shape inference and operator semantics live in ops/.
 */

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/logging.h"

namespace recstack {

/** Element type of a Tensor. */
enum class DType { kFloat32, kInt32, kInt64 };

/** Size of one element of the given type in bytes. */
size_t dtypeSize(DType dtype);

/** Printable name ("float32", ...). */
const char* dtypeName(DType dtype);

/**
 * A contiguous row-major N-dimensional array.
 *
 * Storage is owned (std::vector<std::byte>); copies are deep. The
 * framework moves tensors through a Workspace keyed by name, so
 * tensors themselves carry no name.
 */
class Tensor
{
  public:
    /** An empty 0-d float tensor. */
    Tensor() : dtype_(DType::kFloat32) {}

    /** Allocate a zero-initialized tensor of the given shape/type. */
    explicit Tensor(std::vector<int64_t> shape,
                    DType dtype = DType::kFloat32);

    /**
     * A metadata-only tensor: carries shape/dtype but no storage.
     * Used by profile-only execution so huge-batch sweeps never
     * allocate payloads. Accessing data() panics.
     */
    static Tensor shapeOnly(std::vector<int64_t> shape,
                            DType dtype = DType::kFloat32);

    /**
     * A non-owning view over external storage (an arena slot planned
     * by graph/compiled_net). The pointed-at buffer must stay alive
     * and at least byteSize() long for the view's lifetime; copies of
     * a view alias the same buffer.
     */
    static Tensor view(std::vector<int64_t> shape, DType dtype,
                       std::byte* data);

    /** True when the tensor carries real storage. */
    bool materialized() const { return materialized_; }

    /**
     * True when the payload lives in owned storage (or the tensor is
     * shape-only); false for arena views. Workspace::ensure never
     * reuses a view — a later interpreted run must not silently write
     * through a stale memory plan.
     */
    bool ownsStorage() const { return extData_ == nullptr; }

    /** Convenience factory from explicit float data (1-D or shaped). */
    static Tensor fromFloats(std::vector<int64_t> shape,
                             std::vector<float> values);
    /** Convenience factory from explicit int64 data. */
    static Tensor fromInt64s(std::vector<int64_t> shape,
                             std::vector<int64_t> values);
    /** Convenience factory from explicit int32 data. */
    static Tensor fromInt32s(std::vector<int64_t> shape,
                             std::vector<int32_t> values);

    const std::vector<int64_t>& shape() const { return shape_; }
    DType dtype() const { return dtype_; }

    /** Number of dimensions. */
    size_t rank() const { return shape_.size(); }

    /** Extent of dimension i (supports negative axes Python-style). */
    int64_t dim(int i) const;

    /** Total element count. */
    int64_t numel() const;

    /** Total byte size of the payload (real or would-be). */
    size_t byteSize() const
    {
        return static_cast<size_t>(numel()) * dtypeSize(dtype_);
    }

    /** Reinterpret with a new shape of identical numel. */
    void reshape(std::vector<int64_t> shape);

    /** Typed raw pointers; panics on dtype mismatch. */
    template <typename T> T* data();
    template <typename T> const T* data() const;

    /** Element access for tests and builders (float tensors). */
    float at(std::initializer_list<int64_t> idx) const;
    void set(std::initializer_list<int64_t> idx, float value);

    /** Human-readable "float32[4, 8]" description. */
    std::string describe() const;

  private:
    int64_t flatIndex(std::initializer_list<int64_t> idx) const;
    template <typename T> void checkDType() const;

    std::vector<int64_t> shape_;
    DType dtype_;
    bool materialized_ = true;
    std::vector<std::byte> storage_;
    std::byte* extData_ = nullptr;  ///< set for non-owning views
};

template <typename T>
inline T*
Tensor::data()
{
    checkDType<T>();
    RECSTACK_CHECK(materialized_, "data() on a shape-only tensor");
    return reinterpret_cast<T*>(extData_ != nullptr ? extData_
                                                    : storage_.data());
}

template <typename T>
inline const T*
Tensor::data() const
{
    checkDType<T>();
    RECSTACK_CHECK(materialized_, "data() on a shape-only tensor");
    return reinterpret_cast<const T*>(extData_ != nullptr
                                          ? extData_
                                          : storage_.data());
}

template <typename T>
inline void
Tensor::checkDType() const
{
    bool ok = false;
    if constexpr (std::is_same_v<T, float>) {
        ok = dtype_ == DType::kFloat32;
    } else if constexpr (std::is_same_v<T, int32_t>) {
        ok = dtype_ == DType::kInt32;
    } else if constexpr (std::is_same_v<T, int64_t>) {
        ok = dtype_ == DType::kInt64;
    }
    RECSTACK_CHECK(ok, "tensor dtype mismatch: stored " << dtypeName(dtype_));
}

}  // namespace recstack

#endif  // RECSTACK_TENSOR_TENSOR_H_
