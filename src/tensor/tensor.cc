#include "tensor/tensor.h"

#include <cstring>
#include <numeric>
#include <sstream>

namespace recstack {

size_t
dtypeSize(DType dtype)
{
    switch (dtype) {
      case DType::kFloat32: return 4;
      case DType::kInt32: return 4;
      case DType::kInt64: return 8;
    }
    RECSTACK_PANIC("unknown dtype");
}

const char*
dtypeName(DType dtype)
{
    switch (dtype) {
      case DType::kFloat32: return "float32";
      case DType::kInt32: return "int32";
      case DType::kInt64: return "int64";
    }
    return "?";
}

namespace {

int64_t
shapeNumel(const std::vector<int64_t>& shape)
{
    int64_t n = 1;
    for (int64_t d : shape) {
        RECSTACK_CHECK(d >= 0, "negative dimension " << d);
        n *= d;
    }
    return n;
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape, DType dtype)
    : shape_(std::move(shape)), dtype_(dtype)
{
    storage_.assign(static_cast<size_t>(shapeNumel(shape_)) *
                    dtypeSize(dtype_), std::byte{0});
}

Tensor
Tensor::shapeOnly(std::vector<int64_t> shape, DType dtype)
{
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = dtype;
    t.materialized_ = false;
    (void)shapeNumel(t.shape_);  // validates non-negative dims
    return t;
}

Tensor
Tensor::view(std::vector<int64_t> shape, DType dtype, std::byte* data)
{
    RECSTACK_CHECK(data != nullptr, "view over a null buffer");
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = dtype;
    (void)shapeNumel(t.shape_);  // validates non-negative dims
    t.extData_ = data;
    return t;
}

Tensor
Tensor::fromFloats(std::vector<int64_t> shape, std::vector<float> values)
{
    Tensor t(std::move(shape), DType::kFloat32);
    RECSTACK_CHECK(static_cast<int64_t>(values.size()) == t.numel(),
                   "value count " << values.size() << " != numel "
                   << t.numel());
    std::memcpy(t.storage_.data(), values.data(), t.byteSize());
    return t;
}

Tensor
Tensor::fromInt64s(std::vector<int64_t> shape, std::vector<int64_t> values)
{
    Tensor t(std::move(shape), DType::kInt64);
    RECSTACK_CHECK(static_cast<int64_t>(values.size()) == t.numel(),
                   "value count mismatch");
    std::memcpy(t.storage_.data(), values.data(), t.byteSize());
    return t;
}

Tensor
Tensor::fromInt32s(std::vector<int64_t> shape, std::vector<int32_t> values)
{
    Tensor t(std::move(shape), DType::kInt32);
    RECSTACK_CHECK(static_cast<int64_t>(values.size()) == t.numel(),
                   "value count mismatch");
    std::memcpy(t.storage_.data(), values.data(), t.byteSize());
    return t;
}

int64_t
Tensor::dim(int i) const
{
    const int r = static_cast<int>(rank());
    if (i < 0) {
        i += r;
    }
    RECSTACK_CHECK(i >= 0 && i < r, "dim " << i << " out of range for rank "
                   << r);
    return shape_[static_cast<size_t>(i)];
}

int64_t
Tensor::numel() const
{
    return shapeNumel(shape_);
}

void
Tensor::reshape(std::vector<int64_t> shape)
{
    RECSTACK_CHECK(shapeNumel(shape) == numel(),
                   "reshape changes element count");
    shape_ = std::move(shape);
}

int64_t
Tensor::flatIndex(std::initializer_list<int64_t> idx) const
{
    RECSTACK_CHECK(idx.size() == rank(), "index rank mismatch");
    int64_t flat = 0;
    size_t d = 0;
    for (int64_t i : idx) {
        RECSTACK_CHECK(i >= 0 && i < shape_[d], "index out of bounds");
        flat = flat * shape_[d] + i;
        ++d;
    }
    return flat;
}

float
Tensor::at(std::initializer_list<int64_t> idx) const
{
    return data<float>()[flatIndex(idx)];
}

void
Tensor::set(std::initializer_list<int64_t> idx, float value)
{
    data<float>()[flatIndex(idx)] = value;
}

std::string
Tensor::describe() const
{
    std::ostringstream oss;
    oss << dtypeName(dtype_) << "[";
    for (size_t i = 0; i < shape_.size(); ++i) {
        oss << (i ? ", " : "") << shape_[i];
    }
    oss << "]";
    return oss.str();
}

}  // namespace recstack
