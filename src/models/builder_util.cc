#include "models/builder_util.h"

namespace recstack {

std::string
GraphBuilder::uniq(const std::string& stem)
{
    return stem + "_" + std::to_string(counter_++);
}

std::string
GraphBuilder::addOp(OperatorPtr op, std::string out_blob)
{
    model_->net.addOp(std::move(op));
    return out_blob;
}

void
GraphBuilder::addWeight(const std::string& name, std::vector<int64_t> shape,
                        bool embedding)
{
    uint64_t elems = 1;
    for (int64_t d : shape) {
        elems *= static_cast<uint64_t>(d);
    }
    model_->weights.push_back({name, std::move(shape), embedding});
    model_->net.addExternalInput(name);
    if (embedding) {
        model_->features.embParams += elems;
    }
}

std::string
GraphBuilder::denseInput(const std::string& blob, int64_t dim)
{
    model_->workload.continuous.push_back({blob, dim});
    model_->net.addExternalInput(blob);
    return blob;
}

std::string
GraphBuilder::embeddingBag(const std::string& prefix, int64_t rows,
                           int64_t dim, int64_t lookups, double zipf,
                           bool weighted)
{
    const std::string table = prefix + "_table";
    const std::string indices = prefix + "_indices";
    const std::string lengths = prefix + "_lengths";
    const std::string out = prefix + "_pooled";
    const std::string weights = weighted ? prefix + "_weights" : "";

    addWeight(table, {rows, dim}, true);
    model_->workload.categorical.push_back(
        {indices, lengths, rows, lookups, zipf, weights});
    model_->net.addExternalInput(indices);
    model_->net.addExternalInput(lengths);

    ++model_->features.numTables;
    model_->features.lookupsPerTable += static_cast<double>(lookups);

    if (weighted) {
        model_->net.addExternalInput(weights);
        addOp(makeSparseLengthsWeightedSum(uniq("slws"), table, weights,
                                           indices, lengths, out, zipf),
              out);
    } else {
        addOp(makeSparseLengthsSum(uniq("sls"), table, indices, lengths,
                                   out, zipf),
              out);
    }
    return out;
}

std::string
GraphBuilder::embeddingGather(const std::string& prefix, int64_t rows,
                              int64_t dim, int64_t lookups, double zipf)
{
    const std::string table = prefix + "_table";
    const std::string indices = prefix + "_indices";
    const std::string lengths = prefix + "_lengths";
    const std::string out = prefix + "_rows";

    addWeight(table, {rows, dim}, true);
    model_->workload.categorical.push_back(
        {indices, lengths, rows, lookups, zipf, ""});
    model_->net.addExternalInput(indices);
    model_->net.addExternalInput(lengths);

    ++model_->features.numTables;
    model_->features.lookupsPerTable += static_cast<double>(lookups);

    addOp(makeGather(uniq("gather"), table, indices, out, zipf), out);
    return out;
}

std::string
GraphBuilder::fc(const std::string& x, int64_t in_dim, int64_t out_dim,
                 bool top)
{
    const std::string stem = uniq("fc");
    const std::string w = stem + "_w";
    const std::string b = stem + "_b";
    const std::string y = stem + "_y";
    addWeight(w, {out_dim, in_dim}, false);
    addWeight(b, {out_dim}, false);
    const uint64_t params =
        static_cast<uint64_t>(out_dim) * static_cast<uint64_t>(in_dim) +
        static_cast<uint64_t>(out_dim);
    model_->features.fcParams += params;
    if (top) {
        model_->features.fcTopParams += params;
    }
    return addOp(makeFC(stem, x, w, b, y), y);
}

std::pair<std::string, std::string>
GraphBuilder::fcWeights(const std::string& stem, int64_t in_dim,
                        int64_t out_dim, bool top)
{
    const std::string w = stem + "_w";
    const std::string b = stem + "_b";
    addWeight(w, {out_dim, in_dim}, false);
    addWeight(b, {out_dim}, false);
    const uint64_t params =
        static_cast<uint64_t>(out_dim) * static_cast<uint64_t>(in_dim) +
        static_cast<uint64_t>(out_dim);
    model_->features.fcParams += params;
    if (top) {
        model_->features.fcTopParams += params;
    }
    return {w, b};
}

std::string
GraphBuilder::fcWith(const std::string& x, const std::string& w,
                     const std::string& b)
{
    const std::string stem = uniq("fc");
    return addOp(makeFC(stem, x, w, b, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::mlp(const std::string& x, int64_t in_dim,
                  const std::vector<int64_t>& widths, bool top)
{
    std::string cur = x;
    int64_t cur_dim = in_dim;
    for (size_t i = 0; i < widths.size(); ++i) {
        cur = fc(cur, cur_dim, widths[i], top);
        if (i + 1 < widths.size()) {
            cur = relu(cur);
        }
        cur_dim = widths[i];
    }
    return cur;
}

std::string
GraphBuilder::relu(const std::string& x)
{
    const std::string stem = uniq("relu");
    return addOp(makeRelu(stem, x, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::sigmoid(const std::string& x)
{
    const std::string stem = uniq("sigmoid");
    return addOp(makeSigmoid(stem, x, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::tanhAct(const std::string& x)
{
    const std::string stem = uniq("tanh");
    return addOp(makeTanh(stem, x, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::concat(const std::vector<std::string>& xs)
{
    const std::string stem = uniq("concat");
    return addOp(makeConcat(stem, xs, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::add(const std::string& a, const std::string& b)
{
    const std::string stem = uniq("add");
    return addOp(makeAdd(stem, a, b, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::sub(const std::string& a, const std::string& b)
{
    const std::string stem = uniq("sub");
    return addOp(makeSub(stem, a, b, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::mul(const std::string& a, const std::string& b)
{
    const std::string stem = uniq("mul");
    return addOp(makeMul(stem, a, b, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::softmax(const std::string& x)
{
    const std::string stem = uniq("softmax");
    return addOp(makeSoftmax(stem, x, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::reshape(const std::string& x, std::vector<int64_t> shape)
{
    const std::string stem = uniq("reshape");
    return addOp(makeReshape(stem, x, stem + "_y", std::move(shape)),
                 stem + "_y");
}

std::string
GraphBuilder::transpose(const std::string& x)
{
    const std::string stem = uniq("transpose");
    return addOp(makeTranspose(stem, x, stem + "_y"), stem + "_y");
}

std::string
GraphBuilder::batchMatMul(const std::string& a, const std::string& b)
{
    const std::string stem = uniq("bmm");
    return addOp(makeBatchMatMul(stem, a, b, stem + "_y"), stem + "_y");
}

std::pair<std::string, std::string>
GraphBuilder::gru(const std::string& x, int64_t in_dim, int64_t hidden,
                  const std::string& att)
{
    const std::string stem = uniq("gru");
    const std::string wx = stem + "_wx";
    const std::string wh = stem + "_wh";
    const std::string bias = stem + "_b";
    const std::string h0 = stem + "_h0";
    const std::string hseq = stem + "_hseq";
    const std::string hlast = stem + "_hlast";

    addWeight(wx, {3 * hidden, in_dim}, false);
    addWeight(wh, {3 * hidden, hidden}, false);
    addWeight(bias, {3 * hidden}, false);
    // The initial hidden state is batch-shaped, so it arrives as a
    // (zero-meaningful) dense input rather than a weight.
    denseInput(h0, hidden);

    const uint64_t params = static_cast<uint64_t>(3 * hidden) *
                            static_cast<uint64_t>(in_dim + hidden + 1);
    model_->features.fcParams += params;
    model_->features.gru = true;

    model_->net.addOp(makeGRULayer(stem, x, h0, wx, wh, bias, hseq, hlast,
                                   att));
    return {hseq, hlast};
}

void
GraphBuilder::finish(const std::string& blob)
{
    const std::string out = "output";
    model_->net.addOp(makeSigmoid("output_sigmoid", blob, out));
    model_->net.addExternalOutput(out);
    model_->outputBlob = out;
}

void
GraphBuilder::markUniqueCode(uint64_t bytes)
{
    RECSTACK_CHECK(!model_->net.ops().empty(),
                   "markUniqueCode with empty net");
    model_->net.ops().back()->setUniqueCodeBytes(bytes);
}

}  // namespace recstack
