#ifndef RECSTACK_MODELS_STORE_BINDING_H_
#define RECSTACK_MODELS_STORE_BINDING_H_

/**
 * @file
 * Binding between a built Model and the sharded embedding parameter
 * store (store/embedding_store.h): the in-process analogue of a
 * parameter server owning the embedding tables while inference
 * workers keep only the (small) dense weights private.
 *
 * StoreBackedModel materializes the model's parameters ONCE with the
 * exact same RNG stream Model::initParams uses, moves every embedding
 * table into one EmbeddingStore, and keeps master copies of the dense
 * (FC/GRU) weights. Each worker then bind()s its Workspace: dense
 * weights are deep-copied (they are per-worker private, as before),
 * while table blobs become shape-only stand-ins routed through the
 * shared store — so N workers pay 1 table copy + cache instead of N
 * copies, with bit-identical numerics.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "models/model.h"
#include "store/embedding_store.h"

namespace recstack {

/** Total embedding-table bytes of one dense copy of the model. */
uint64_t modelEmbeddingBytes(const Model& model);

/** A model whose embedding tables live in a shared EmbeddingStore. */
class StoreBackedModel
{
  public:
    /**
     * Builds the store. Parameter values are generated with
     * Model::initParams(seed) semantics — the single RNG stream over
     * all weights in declaration order — so a bound workspace holds
     * byte-identical weights to a privately-initialized one.
     */
    explicit StoreBackedModel(const Model& model,
                              StoreConfig config = {},
                              uint64_t seed = 7);

    /**
     * Populate a worker workspace: deep-copy dense weights, register
     * each table as a shape-only blob, and attach the shared store.
     * The StoreBackedModel must outlive every bound workspace.
     */
    void bind(Workspace& ws) const;

    EmbeddingStore& store() const { return *store_; }

    /** Bytes of one dense copy of all embedding tables. */
    uint64_t embeddingBytesOneCopy() const { return embeddingBytes_; }

    /** Store-side resident footprint: backing tables + hot caches. */
    uint64_t residentBytes() const { return store_->residentBytes(); }

  private:
    std::unique_ptr<EmbeddingStore> store_;
    /// Master copies of non-embedding weights, deep-copied per bind().
    std::vector<std::pair<std::string, Tensor>> dense_;
    /// Shape-only stand-ins registered per bind().
    std::vector<std::pair<std::string, std::vector<int64_t>>> tables_;
    uint64_t embeddingBytes_ = 0;
};

}  // namespace recstack

#endif  // RECSTACK_MODELS_STORE_BINDING_H_
