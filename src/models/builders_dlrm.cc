#include <algorithm>

#include "models/builder_util.h"
#include "models/builders_internal.h"

/**
 * @file
 * DLRM-family builders (RM1, RM2, RM3): Facebook's social-media
 * ranking models. Continuous features flow through a bottom MLP,
 * categorical features through SparseLengthsSum embedding bags, and
 * everything is concatenated into a top MLP [4], [15], [22].
 *
 * Configurations follow the paper: RM1 is a small model with 8 tables
 * x 80 lookups; RM2 a large model with 32 tables x 120 lookups; RM3
 * shifts the weight budget into large FC stacks over continuous
 * inputs with only 20 lookups per table.
 */

namespace recstack {
namespace builders {

int64_t
scaledRows(int64_t rows, const ModelOptions& opts)
{
    const auto scaled = static_cast<int64_t>(
        static_cast<double>(rows) * opts.tableScale);
    return std::max<int64_t>(64, scaled);
}

DlrmConfig
dlrmConfig(ModelId id)
{
    DlrmConfig cfg;
    cfg.id = id;
    switch (id) {
      case ModelId::kRM1:
        cfg.denseDim = 13;
        cfg.bottom = {256, 128, 32};
        cfg.numTables = 8;
        cfg.tableRows = 1000000;
        cfg.embDim = 32;
        cfg.lookups = 80;
        cfg.top = {128, 64, 1};
        break;
      case ModelId::kRM2:
        cfg.denseDim = 13;
        cfg.bottom = {256, 128, 64};
        cfg.numTables = 32;
        cfg.tableRows = 250000;
        cfg.embDim = 64;
        cfg.lookups = 120;
        cfg.top = {512, 256, 1};
        break;
      case ModelId::kRM3:
        cfg.denseDim = 256;
        cfg.bottom = {2048, 1024, 512, 256};
        cfg.numTables = 10;
        cfg.tableRows = 100000;
        cfg.embDim = 32;
        cfg.lookups = 20;
        cfg.top = {1024, 512, 256, 1};
        break;
      default:
        RECSTACK_PANIC("dlrmConfig: " << modelName(id)
                       << " is not a DLRM-family model");
    }
    return cfg;
}

namespace {

Model
buildDLRM(const DlrmConfig& cfg, const ModelOptions& opts)
{
    Model model(cfg.id, modelName(cfg.id));
    GraphBuilder g(&model);
    model.features.latentDim = static_cast<int>(cfg.embDim);

    // Bottom MLP over continuous features; its final width matches
    // the embedding latent dimension (DLRM convention).
    const std::string dense = g.denseInput("dense", cfg.denseDim);
    std::string bottom_out =
        g.mlp(dense, cfg.denseDim, cfg.bottom, /*top=*/false);
    bottom_out = g.relu(bottom_out);

    // Embedding bags: one SparseLengthsSum per table.
    std::vector<std::string> pooled;
    pooled.push_back(bottom_out);
    const int64_t rows = scaledRows(cfg.tableRows, opts);
    for (int t = 0; t < cfg.numTables; ++t) {
        pooled.push_back(g.embeddingBag("emb" + std::to_string(t), rows,
                                        cfg.embDim, cfg.lookups,
                                        opts.zipfExponent,
                                        opts.positionWeighted));
    }

    // Feature interaction: concatenation (the DeepRecSys RM flavor).
    const std::string interact = g.concat(pooled);
    const int64_t interact_dim =
        cfg.bottom.back() + cfg.numTables * cfg.embDim;

    const std::string top_out =
        g.mlp(interact, interact_dim, cfg.top, /*top=*/true);
    g.finish(top_out);
    model.features.lookupsPerTable /= std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

}  // namespace

Model
buildRM1(const ModelOptions& opts)
{
    return buildDLRM(dlrmConfig(ModelId::kRM1), opts);
}

Model
buildRM2(const ModelOptions& opts)
{
    return buildDLRM(dlrmConfig(ModelId::kRM2), opts);
}

Model
buildRM3(const ModelOptions& opts)
{
    return buildDLRM(dlrmConfig(ModelId::kRM3), opts);
}

}  // namespace builders

Model
buildModel(ModelId id, const ModelOptions& opts)
{
    switch (id) {
      case ModelId::kNCF: return builders::buildNCF(opts);
      case ModelId::kRM1: return builders::buildRM1(opts);
      case ModelId::kRM2: return builders::buildRM2(opts);
      case ModelId::kRM3: return builders::buildRM3(opts);
      case ModelId::kWnD: return builders::buildWnD(opts);
      case ModelId::kMTWnD: return builders::buildMTWnD(opts);
      case ModelId::kDIN: return builders::buildDIN(opts);
      case ModelId::kDIEN: return builders::buildDIEN(opts);
      case ModelId::kCustom:
        RECSTACK_FATAL("kCustom has no stock builder; use "
                       "buildCustomModel (models/custom.h)");
    }
    RECSTACK_PANIC("unknown model id");
}

}  // namespace recstack
