#ifndef RECSTACK_MODELS_BUILDER_UTIL_H_
#define RECSTACK_MODELS_BUILDER_UTIL_H_

/**
 * @file
 * GraphBuilder: shared plumbing for the eight model builders —
 * declares weights, wires operators with unique names, registers
 * workload input specs, and accumulates ModelFeatures.
 */

#include <string>
#include <vector>

#include "models/model.h"
#include "ops/concat.h"
#include "ops/elementwise.h"
#include "ops/embedding.h"
#include "ops/fc.h"
#include "ops/gru.h"
#include "ops/matmul.h"
#include "ops/reshape.h"

namespace recstack {

/** Fluent helper the model builders compose nets with. */
class GraphBuilder
{
  public:
    explicit GraphBuilder(Model* model) : model_(model) {}

    /** Fresh blob/op name with the given stem. */
    std::string uniq(const std::string& stem);

    /** Declare a dense input feature and return its blob name. */
    std::string denseInput(const std::string& blob, int64_t dim);

    /**
     * Declare an embedding table plus its index/length inputs and add
     * a SparseLengthsSum. Returns the pooled [B, dim] blob.
     */
    std::string embeddingBag(const std::string& prefix, int64_t rows,
                             int64_t dim, int64_t lookups, double zipf,
                             bool weighted = false);

    /**
     * Declare an embedding table and gather @c lookups rows per sample
     * without pooling: returns the [B * lookups, dim] blob.
     */
    std::string embeddingGather(const std::string& prefix, int64_t rows,
                                int64_t dim, int64_t lookups, double zipf);

    /** FC layer; registers W/b weights. @c top marks post-interaction. */
    std::string fc(const std::string& x, int64_t in_dim, int64_t out_dim,
                   bool top);

    /** FC + ReLU chain over the given layer widths. */
    std::string mlp(const std::string& x, int64_t in_dim,
                    const std::vector<int64_t>& widths, bool top);

    /**
     * Declare FC weights without adding an op (for layers whose
     * weights are shared across many op instances, e.g. DIN's local
     * activation units). Returns {w, b} blob names.
     */
    std::pair<std::string, std::string> fcWeights(const std::string& stem,
                                                  int64_t in_dim,
                                                  int64_t out_dim, bool top);

    /** FC op over previously declared weights. */
    std::string fcWith(const std::string& x, const std::string& w,
                       const std::string& b);

    std::string relu(const std::string& x);
    std::string sigmoid(const std::string& x);
    std::string tanhAct(const std::string& x);
    std::string concat(const std::vector<std::string>& xs);
    std::string add(const std::string& a, const std::string& b);
    std::string sub(const std::string& a, const std::string& b);
    std::string mul(const std::string& a, const std::string& b);
    std::string softmax(const std::string& x);
    std::string reshape(const std::string& x, std::vector<int64_t> shape);
    std::string transpose(const std::string& x);
    std::string batchMatMul(const std::string& a, const std::string& b);

    /**
     * GRU layer over [T, B, I]; registers weight matrices and an
     * all-zero initial state. Returns {hseq, hlast} blob names.
     */
    std::pair<std::string, std::string> gru(const std::string& x,
                                            int64_t in_dim, int64_t hidden,
                                            const std::string& att = "");

    /** Sigmoid the blob into "output" and close the net. */
    void finish(const std::string& blob);

    /** Mark the most recently added op as a unique code region. */
    void markUniqueCode(uint64_t bytes);

    ModelFeatures& features() { return model_->features; }

  private:
    std::string addOp(OperatorPtr op, std::string out_blob);
    void addWeight(const std::string& name, std::vector<int64_t> shape,
                   bool embedding);

    Model* model_;
    int counter_ = 0;
};

}  // namespace recstack

#endif  // RECSTACK_MODELS_BUILDER_UTIL_H_
