#ifndef RECSTACK_MODELS_CUSTOM_H_
#define RECSTACK_MODELS_CUSTOM_H_

/**
 * @file
 * Custom DLRM-style model definition from a small text config, so
 * downstream users can characterize their own architectures without
 * writing a builder:
 *
 *     # my production candidate
 *     name MyRanker
 *     dense 13
 *     bottom 512 256 64
 *     table rows=2000000 dim=64 lookups=40
 *     table rows=500000 dim=64 lookups=10 zipf=0.9 weighted
 *     top 1024 512 1
 *
 * `dense`, `bottom`, at least one `table` and `top` are required.
 * Tables may differ in geometry (unlike the stock RM models).
 */

#include <iosfwd>
#include <string>

#include "models/model.h"

namespace recstack {

/** Parsed custom-model description. */
struct CustomModelConfig {
    std::string name = "Custom";
    int64_t denseDim = 0;
    std::vector<int64_t> bottom;
    std::vector<int64_t> top;
    struct Table {
        int64_t rows = 0;
        int64_t dim = 0;
        int64_t lookups = 1;
        double zipf = 0.75;
        bool weighted = false;
    };
    std::vector<Table> tables;
};

/**
 * Parse a config from a stream.
 * @return false with *error set on malformed input.
 */
bool parseCustomModelConfig(std::istream& in, CustomModelConfig* config,
                            std::string* error);

/** File convenience wrapper. */
bool loadCustomModelConfig(const std::string& path,
                           CustomModelConfig* config, std::string* error);

/** Build the operator graph for a parsed config. */
Model buildCustomModel(const CustomModelConfig& config);

}  // namespace recstack

#endif  // RECSTACK_MODELS_CUSTOM_H_
