#ifndef RECSTACK_MODELS_MODEL_H_
#define RECSTACK_MODELS_MODEL_H_

/**
 * @file
 * The eight industry-representative deep recommendation models of
 * Table I, expressed as recstack operator graphs.
 *
 * Model parameters follow the paper and the DeepRecSys suite it
 * characterizes: RM1/RM2 are embedding-dominated DLRM configurations
 * (80 / 120 lookups per table), RM3/WnD/MT-WnD are FC-dominated,
 * DIN/DIEN implement attention with local activation units / GRUs.
 * Embedding-table row counts are scaled to simulator-tractable sizes
 * while keeping every table footprint far beyond last-level cache,
 * preserving the paper's irregular-DRAM-access regime (see DESIGN.md).
 */

#include <string>
#include <vector>

#include "graph/net.h"
#include "workload/batch_generator.h"

namespace recstack {

/** Identifiers of the Table I model suite. */
enum class ModelId {
    kNCF, kRM1, kRM2, kRM3, kWnD, kMTWnD, kDIN, kDIEN,
    kCustom  ///< user-defined architecture (models/custom.h)
};

/** Canonical short name ("NCF", "RM1", ...). */
const char* modelName(ModelId id);

/** One-line application-domain description (Table I). */
const char* modelDomain(ModelId id);

/** One-line model-architecture insight (Table I). */
const char* modelInsight(ModelId id);

/** All eight models in the paper's presentation order. */
std::vector<ModelId> allModels();

/** Parse "RM1" etc.; panics on unknown names. */
ModelId modelFromName(const std::string& name);

/** Build-time knobs (defaults reproduce the paper's configurations). */
struct ModelOptions {
    /// Multiplier on embedding-table row counts (tests use << 1).
    double tableScale = 1.0;
    /// DIN user-behavior lookups ("large amount (750) of lookups").
    int dinBehaviors = 750;
    /// DIEN behavior-sequence length processed by the GRU stack.
    int dienSteps = 64;
    /// MT-WnD parallel objective heads (likes, ratings, ...).
    int mtwndTasks = 5;
    /// Embedding index skew. Production recommendation traffic is
    /// heavily skewed (hot users/items); 0 degenerates to uniform.
    double zipfExponent = 0.75;
    /// Position-weighted embedding pooling for the DLRM models
    /// (SparseLengthsWeightedSum instead of SparseLengthsSum), as
    /// production ranking models use.
    bool positionWeighted = false;
    /// Use a single fused GRU operator for DIEN instead of the
    /// Caffe2-RecurrentNetwork-style per-timestep unrolling (ablation
    /// of operator granularity; the paper characterizes the unrolled
    /// framework behaviour).
    bool dienFusedGru = false;
};

/** Reduced-size options for unit tests. */
ModelOptions tinyOptions();

/** A learned parameter blob the model needs materialized. */
struct WeightSpec {
    std::string name;
    std::vector<int64_t> shape;
    bool embedding = false;
};

/**
 * Algorithmic architecture features used by the Fig. 16 regression
 * (model-architecture components vs pipeline bottlenecks).
 */
struct ModelFeatures {
    int numTables = 0;
    double lookupsPerTable = 0.0;
    int latentDim = 0;
    uint64_t embParams = 0;    ///< total embedding-table elements
    uint64_t fcParams = 0;     ///< total FC weights (incl. GRU matrices)
    uint64_t fcTopParams = 0;  ///< FC weights above the interaction
    bool attention = false;
    bool gru = false;

    double fcToEmbRatio() const;
    double fcTopHeaviness() const;
};

/** A fully-specified model: graph + input schema + parameters. */
struct Model {
    ModelId id;
    std::string name;
    NetDef net;
    WorkloadSpec workload;
    std::vector<WeightSpec> weights;
    ModelFeatures features;
    std::string outputBlob;

    Model(ModelId mid, std::string mname)
        : id(mid), name(mname), net(std::move(mname))
    {
    }

    /** Materialize all weight blobs with deterministic random values. */
    void initParams(Workspace& ws, uint64_t seed = 7) const;

    /** Declare all weights as shape-only blobs (profile-only runs). */
    void declareParams(Workspace& ws) const;

    /** Total parameter bytes (fp32). */
    uint64_t paramBytes() const;
};

/** Build one of the eight models. */
Model buildModel(ModelId id, const ModelOptions& opts = {});

}  // namespace recstack

#endif  // RECSTACK_MODELS_MODEL_H_
