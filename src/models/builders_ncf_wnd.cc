#include <algorithm>

#include "models/builder_util.h"
#include "models/builders_internal.h"

/**
 * @file
 * NCF, WnD and MT-WnD builders.
 *
 * NCF (He et al., WWW'17): matrix factorization generalized with an
 * MLP branch; four embedding tables, single lookups (MovieLens-scale).
 *
 * WnD (Cheng et al., 2016): one-hot wide embeddings concatenated with
 * continuous inputs, processed by a deep FC stack (Play Store).
 *
 * MT-WnD (Zhao et al., RecSys'19): WnD trunk with parallel per-
 * objective FC heads (YouTube multi-objective ranking).
 */

namespace recstack {
namespace builders {

Model
buildNCF(const ModelOptions& opts)
{
    Model model(ModelId::kNCF, modelName(ModelId::kNCF));
    GraphBuilder g(&model);
    const int64_t dim = 64;
    model.features.latentDim = static_cast<int>(dim);

    // MovieLens-scale populations: ~140k users, ~28k items.
    const int64_t users = scaledRows(140000, opts);
    const int64_t items = scaledRows(28000, opts);

    // GMF branch: elementwise product of user/item factors.
    const std::string u_mf =
        g.embeddingBag("user_mf", users, dim, 1, opts.zipfExponent);
    const std::string v_mf =
        g.embeddingBag("item_mf", items, dim, 1, opts.zipfExponent);
    const std::string gmf = g.mul(u_mf, v_mf);

    // MLP branch over concatenated factors.
    const std::string u_mlp =
        g.embeddingBag("user_mlp", users, dim, 1, opts.zipfExponent);
    const std::string v_mlp =
        g.embeddingBag("item_mlp", items, dim, 1, opts.zipfExponent);
    const std::string both = g.concat({u_mlp, v_mlp});
    std::string mlp_out = g.mlp(both, 2 * dim, {256, 256, 128},
                                /*top=*/false);
    mlp_out = g.relu(mlp_out);

    // NeuMF head: concat(GMF, MLP) -> score.
    const std::string fused = g.concat({gmf, mlp_out});
    const std::string score = g.fc(fused, dim + 128, 1, /*top=*/true);
    g.finish(score);
    model.features.lookupsPerTable /= std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

namespace {

/** Shared WnD trunk: wide one-hot embeddings + dense -> deep stack. */
std::string
wndTrunk(GraphBuilder& g, const ModelOptions& opts, int64_t* trunk_dim)
{
    const int64_t dim = 64;
    const int num_tables = 20;
    const int64_t dense_dim = 50;
    const int64_t rows = scaledRows(50000, opts);

    std::vector<std::string> parts;
    for (int t = 0; t < num_tables; ++t) {
        parts.push_back(g.embeddingBag("wide" + std::to_string(t), rows,
                                       dim, 1, opts.zipfExponent));
    }
    parts.push_back(g.denseInput("dense", dense_dim));

    const std::string wide = g.concat(parts);
    const int64_t wide_dim = num_tables * dim + dense_dim;
    std::string deep = g.mlp(wide, wide_dim, {1024, 512, 256},
                             /*top=*/false);
    deep = g.relu(deep);
    *trunk_dim = 256;
    return deep;
}

}  // namespace

Model
buildWnD(const ModelOptions& opts)
{
    Model model(ModelId::kWnD, modelName(ModelId::kWnD));
    GraphBuilder g(&model);
    model.features.latentDim = 64;

    int64_t trunk_dim = 0;
    const std::string trunk = wndTrunk(g, opts, &trunk_dim);
    const std::string score = g.fc(trunk, trunk_dim, 1, /*top=*/true);
    g.finish(score);
    model.features.lookupsPerTable /= std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

Model
buildMTWnD(const ModelOptions& opts)
{
    Model model(ModelId::kMTWnD, modelName(ModelId::kMTWnD));
    GraphBuilder g(&model);
    model.features.latentDim = 64;

    int64_t trunk_dim = 0;
    const std::string trunk = wndTrunk(g, opts, &trunk_dim);

    // Parallel per-objective towers (likes, ratings, shares, ...).
    std::vector<std::string> heads;
    for (int task = 0; task < opts.mtwndTasks; ++task) {
        heads.push_back(g.mlp(trunk, trunk_dim, {512, 256, 1},
                              /*top=*/true));
    }
    const std::string scores = g.concat(heads);
    g.finish(scores);
    model.features.lookupsPerTable /= std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

}  // namespace builders
}  // namespace recstack
