#include "models/store_binding.h"

namespace recstack {

uint64_t
modelEmbeddingBytes(const Model& model)
{
    uint64_t n = 0;
    for (const WeightSpec& spec : model.weights) {
        if (!spec.embedding) {
            continue;
        }
        uint64_t elems = 1;
        for (int64_t d : spec.shape) {
            elems *= static_cast<uint64_t>(d);
        }
        n += elems * 4;
    }
    return n;
}

StoreBackedModel::StoreBackedModel(const Model& model,
                                   StoreConfig config, uint64_t seed)
    : store_(std::make_unique<EmbeddingStore>(config))
{
    // One initParams pass generates every weight with the canonical
    // interleaved RNG stream; tables are then MOVED into the store
    // (no second copy is ever made).
    Workspace master;
    model.initParams(master, seed);
    for (const WeightSpec& spec : model.weights) {
        Tensor& t = master.get(spec.name);
        if (spec.embedding && spec.shape.size() == 2) {
            embeddingBytes_ += static_cast<uint64_t>(t.byteSize());
            tables_.emplace_back(spec.name, spec.shape);
            store_->addTable(spec.name, std::move(t));
        } else {
            dense_.emplace_back(spec.name, std::move(t));
        }
    }
}

void
StoreBackedModel::bind(Workspace& ws) const
{
    for (const auto& [name, tensor] : dense_) {
        ws.set(name, tensor);  // deep copy: per-worker private weights
    }
    for (const auto& [name, shape] : tables_) {
        ws.set(name, Tensor::shapeOnly(shape));
    }
    ws.attachStore(store_.get());
}

}  // namespace recstack
