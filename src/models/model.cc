#include "models/model.h"

#include <cmath>

#include "common/rng.h"

namespace recstack {

const char*
modelName(ModelId id)
{
    switch (id) {
      case ModelId::kNCF: return "NCF";
      case ModelId::kRM1: return "RM1";
      case ModelId::kRM2: return "RM2";
      case ModelId::kRM3: return "RM3";
      case ModelId::kWnD: return "WnD";
      case ModelId::kMTWnD: return "MT-WnD";
      case ModelId::kDIN: return "DIN";
      case ModelId::kDIEN: return "DIEN";
      case ModelId::kCustom: return "Custom";
    }
    return "?";
}

const char*
modelDomain(ModelId id)
{
    switch (id) {
      case ModelId::kNCF: return "Movies (MovieLens)";
      case ModelId::kRM1: return "Social Media (early-stage filtering)";
      case ModelId::kRM2: return "Social Media (late-stage ranking, "
                                 "categorical)";
      case ModelId::kRM3: return "Social Media (late-stage ranking, "
                                 "continuous)";
      case ModelId::kWnD: return "Smartphone Applications (Play Store)";
      case ModelId::kMTWnD: return "Video (YouTube, multi-objective)";
      case ModelId::kDIN: return "E-Commerce (Alibaba)";
      case ModelId::kDIEN: return "E-Commerce (Alibaba - Taobao)";
      case ModelId::kCustom: return "User-defined";
    }
    return "?";
}

const char*
modelInsight(ModelId id)
{
    switch (id) {
      case ModelId::kNCF:
        return "Small model with only four embedding tables";
      case ModelId::kRM1:
        return "Small model with medium (80) lookups per table";
      case ModelId::kRM2:
        return "Large model with large (120) lookups per table";
      case ModelId::kRM3:
        return "Large model with large FC stacks on continuous inputs";
      case ModelId::kWnD:
        return "Medium model with large FC stacks";
      case ModelId::kMTWnD:
        return "Large model with multiple parallel FC stacks over WnD";
      case ModelId::kDIN:
        return "Local activation weights over ~750 behavior lookups";
      case ModelId::kDIEN:
        return "Interaction GRUs replacing DIN's lookup volume";
      case ModelId::kCustom:
        return "User-defined DLRM-style architecture";
    }
    return "?";
}

std::vector<ModelId>
allModels()
{
    return {ModelId::kNCF, ModelId::kRM1, ModelId::kRM2, ModelId::kRM3,
            ModelId::kWnD, ModelId::kMTWnD, ModelId::kDIN, ModelId::kDIEN};
}

ModelId
modelFromName(const std::string& name)
{
    for (ModelId id : allModels()) {
        if (name == modelName(id)) {
            return id;
        }
    }
    RECSTACK_FATAL("unknown model name '" << name << "'");
}

ModelOptions
tinyOptions()
{
    ModelOptions opts;
    opts.tableScale = 0.002;
    opts.dinBehaviors = 6;
    opts.dienSteps = 5;
    opts.mtwndTasks = 2;
    return opts;
}

double
ModelFeatures::fcToEmbRatio() const
{
    if (embParams == 0) {
        return static_cast<double>(fcParams);
    }
    return static_cast<double>(fcParams) / static_cast<double>(embParams);
}

double
ModelFeatures::fcTopHeaviness() const
{
    if (fcParams == 0) {
        return 0.0;
    }
    return static_cast<double>(fcTopParams) / static_cast<double>(fcParams);
}

void
Model::initParams(Workspace& ws, uint64_t seed) const
{
    Rng rng(seed);
    for (const auto& spec : weights) {
        Tensor t(spec.shape);
        float* data = t.data<float>();
        const int64_t n = t.numel();
        // Embedding rows are kept small so pooled sums stay O(1);
        // FC weights use a fan-in style scale so activations do not
        // blow up through deep stacks.
        float scale = 0.1f;
        if (!spec.embedding && spec.shape.size() == 2) {
            scale = 1.0f /
                    std::max(1.0f, std::sqrt(
                        static_cast<float>(spec.shape[1])));
        }
        for (int64_t i = 0; i < n; ++i) {
            data[i] = rng.nextFloat(-scale, scale);
        }
        ws.set(spec.name, std::move(t));
    }
}

void
Model::declareParams(Workspace& ws) const
{
    for (const auto& spec : weights) {
        ws.set(spec.name, Tensor::shapeOnly(spec.shape));
    }
}

uint64_t
Model::paramBytes() const
{
    uint64_t n = 0;
    for (const auto& spec : weights) {
        uint64_t elems = 1;
        for (int64_t d : spec.shape) {
            elems *= static_cast<uint64_t>(d);
        }
        n += elems * 4;
    }
    return n;
}

}  // namespace recstack
