#include "models/custom.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "models/builder_util.h"

namespace recstack {
namespace {

bool
parseDims(std::istringstream& iss, std::vector<int64_t>* dims)
{
    int64_t v = 0;
    while (iss >> v) {
        if (v <= 0) {
            return false;
        }
        dims->push_back(v);
    }
    return !dims->empty();
}

}  // namespace

bool
parseCustomModelConfig(std::istream& in, CustomModelConfig* config,
                       std::string* error)
{
    auto fail = [error](const std::string& msg) {
        if (error != nullptr) {
            *error = msg;
        }
        return false;
    };

    *config = CustomModelConfig{};
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line = line.substr(0, hash);
        }
        std::istringstream iss(line);
        std::string keyword;
        if (!(iss >> keyword)) {
            continue;  // blank / comment-only line
        }
        const std::string at_line =
            " at line " + std::to_string(line_no);

        if (keyword == "name") {
            if (!(iss >> config->name)) {
                return fail("missing model name" + at_line);
            }
        } else if (keyword == "dense") {
            if (!(iss >> config->denseDim) || config->denseDim <= 0) {
                return fail("bad dense dimension" + at_line);
            }
        } else if (keyword == "bottom") {
            if (!parseDims(iss, &config->bottom)) {
                return fail("bad bottom widths" + at_line);
            }
        } else if (keyword == "top") {
            if (!parseDims(iss, &config->top)) {
                return fail("bad top widths" + at_line);
            }
        } else if (keyword == "table") {
            CustomModelConfig::Table table;
            std::string token;
            while (iss >> token) {
                const size_t eq = token.find('=');
                const std::string key =
                    eq == std::string::npos ? token
                                            : token.substr(0, eq);
                const std::string value =
                    eq == std::string::npos ? "" : token.substr(eq + 1);
                if (key == "rows") {
                    table.rows = std::atoll(value.c_str());
                } else if (key == "dim") {
                    table.dim = std::atoll(value.c_str());
                } else if (key == "lookups") {
                    table.lookups = std::atoll(value.c_str());
                } else if (key == "zipf") {
                    table.zipf = std::atof(value.c_str());
                } else if (key == "weighted") {
                    table.weighted = true;
                } else {
                    return fail("unknown table attribute '" + key +
                                "'" + at_line);
                }
            }
            if (table.rows <= 0 || table.dim <= 0 ||
                table.lookups <= 0) {
                return fail("table needs positive rows/dim/lookups" +
                            at_line);
            }
            config->tables.push_back(table);
        } else {
            return fail("unknown keyword '" + keyword + "'" + at_line);
        }
    }

    if (config->denseDim <= 0) {
        return fail("config must declare 'dense <dim>'");
    }
    if (config->bottom.empty()) {
        return fail("config must declare 'bottom <widths...>'");
    }
    if (config->top.empty()) {
        return fail("config must declare 'top <widths...>'");
    }
    if (config->tables.empty()) {
        return fail("config must declare at least one 'table'");
    }
    return true;
}

bool
loadCustomModelConfig(const std::string& path, CustomModelConfig* config,
                      std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot open '" + path + "'";
        }
        return false;
    }
    return parseCustomModelConfig(in, config, error);
}

Model
buildCustomModel(const CustomModelConfig& config)
{
    Model model(ModelId::kCustom, config.name);
    GraphBuilder g(&model);
    model.features.latentDim = static_cast<int>(config.tables[0].dim);

    const std::string dense = g.denseInput("dense", config.denseDim);
    std::string bottom_out =
        g.mlp(dense, config.denseDim, config.bottom, /*top=*/false);
    bottom_out = g.relu(bottom_out);

    std::vector<std::string> pooled;
    pooled.push_back(bottom_out);
    int64_t interact_dim = config.bottom.back();
    for (size_t t = 0; t < config.tables.size(); ++t) {
        const auto& table = config.tables[t];
        pooled.push_back(g.embeddingBag("emb" + std::to_string(t),
                                        table.rows, table.dim,
                                        table.lookups, table.zipf,
                                        table.weighted));
        interact_dim += table.dim;
    }

    const std::string interact = g.concat(pooled);
    const std::string top_out =
        g.mlp(interact, interact_dim, config.top, /*top=*/true);
    g.finish(top_out);
    model.features.lookupsPerTable /=
        std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

}  // namespace recstack
