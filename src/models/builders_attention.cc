#include <algorithm>

#include "models/builder_util.h"
#include "models/builders_internal.h"

/**
 * @file
 * Attention-based builders: DIN and DIEN (Alibaba display advertising).
 *
 * DIN (Zhou et al., KDD'18) scores each user-behavior embedding
 * against the candidate item with a *local activation unit* — a small
 * per-behavior concat + FC + FC chain. The paper highlights that this
 * unrolled implementation produces hundreds of operator instances
 * with unique instruction reference locations, stressing the L1
 * instruction cache; each attention-unit op is therefore marked as a
 * unique code region.
 *
 * DIEN (Zhou et al., AAAI'19) replaces the lookup volume with a
 * two-layer GRU stack (interest extraction + attentional AUGRU
 * evolution) whose regular matrix math is cache friendly.
 */

namespace recstack {
namespace builders {
namespace {

/// Specialized per-instance code bytes of DIN attention-unit ops
/// (each unit carries its own operand addresses and scheduling glue).
constexpr uint64_t kDinUnitCodeBytes = 1536;

}  // namespace

Model
buildDIN(const ModelOptions& opts)
{
    Model model(ModelId::kDIN, modelName(ModelId::kDIN));
    GraphBuilder g(&model);
    const int64_t dim = 64;
    model.features.latentDim = static_cast<int>(dim);
    model.features.attention = true;
    const int behaviors = std::max(1, opts.dinBehaviors);

    const int64_t item_rows = scaledRows(250000, opts);

    // Candidate item ("target") embedding: single lookup.
    const std::string target =
        g.embeddingBag("target", item_rows, dim, 1, opts.zipfExponent);

    // User-behavior history: one table, many gathered rows.
    const std::string rows = g.embeddingGather(
        "behavior", item_rows, dim, behaviors, opts.zipfExponent);
    const std::string behaviors3d =
        g.reshape(rows, {-1, behaviors, dim});

    // Shared local-activation-unit weights (4*dim -> 36 -> 1).
    const auto [w1, b1] = g.fcWeights("att1", 4 * dim, 36, /*top=*/false);
    const auto [w2, b2] = g.fcWeights("att2", 36, 1, /*top=*/false);

    // One unrolled local activation unit per behavior. Every op in
    // the unit is a distinct code region (unique operand addresses).
    std::vector<std::string> scores;
    scores.reserve(static_cast<size_t>(behaviors));
    for (int i = 0; i < behaviors; ++i) {
        // Slice behavior i out of the gathered block.
        const std::string stem = "att_u" + std::to_string(i);
        const std::string sliced = stem + "_emb";
        model.net.addOp(makeSlice(stem + "_slice", behaviors3d, sliced, i));
        g.markUniqueCode(kDinUnitCodeBytes);

        const std::string diff = g.sub(sliced, target);
        g.markUniqueCode(kDinUnitCodeBytes);
        const std::string prod = g.mul(sliced, target);
        g.markUniqueCode(kDinUnitCodeBytes);
        const std::string fused =
            g.concat({sliced, target, diff, prod});
        g.markUniqueCode(kDinUnitCodeBytes);
        std::string h = g.fcWith(fused, w1, b1);
        g.markUniqueCode(kDinUnitCodeBytes);
        h = g.relu(h);
        g.markUniqueCode(kDinUnitCodeBytes);
        const std::string score = g.fcWith(h, w2, b2);
        g.markUniqueCode(kDinUnitCodeBytes);
        scores.push_back(score);
    }

    // Softmax-normalized weighted sum pooling of behaviors.
    const std::string all_scores = g.concat(scores);
    const std::string att = g.softmax(all_scores);
    const std::string att3d = g.reshape(att, {-1, 1, behaviors});
    const std::string pooled3d = g.batchMatMul(att3d, behaviors3d);
    const std::string pooled = g.reshape(pooled3d, {-1, dim});

    // Output MLP over [pooled ; target].
    const std::string fused_out = g.concat({pooled, target});
    const std::string score =
        g.mlp(fused_out, 2 * dim, {200, 80, 1}, /*top=*/true);
    g.finish(score);
    model.features.lookupsPerTable /= std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

namespace {

/// Unique code bytes per unrolled GRU-step op: Caffe2's
/// RecurrentNetwork instantiates a step net per timestep, so each
/// step's ops carry their own operand addresses.
constexpr uint64_t kGruStepCodeBytes = 768;

/**
 * Unrolled (AU)GRU layer, Caffe2-RecurrentNetwork style: ~20 small
 * operator instances per timestep over batch-major [B, T, D] input.
 *
 * @param seq_bm  batch-major input sequence blob [B, T, in_dim]
 * @param att_bm  optional [B, T] attention scores (AUGRU update)
 * @return {hseq_bm [B, T, hidden], hlast [B, hidden]}
 */
std::pair<std::string, std::string>
unrolledGru(GraphBuilder& g, Model* model, const std::string& seq_bm,
            int64_t in_dim, int64_t hidden, int steps,
            const std::string& att_bm)
{
    const std::string stem = g.uniq("ugru");
    const auto [wx, bx] =
        g.fcWeights(stem + "_x", in_dim, 3 * hidden, /*top=*/false);
    const auto [wh, bh] =
        g.fcWeights(stem + "_h", hidden, 3 * hidden, /*top=*/false);
    model->features.gru = true;

    // Running hidden state starts from a dense (zero-meaningful) input.
    std::string h = g.denseInput(stem + "_h0", hidden);

    auto mark = [&g] { g.markUniqueCode(kGruStepCodeBytes); };

    std::string att3d;
    if (!att_bm.empty()) {
        att3d = g.reshape(att_bm, {-1, steps, 1});
    }

    std::vector<std::string> hs;
    hs.reserve(static_cast<size_t>(steps));
    for (int t = 0; t < steps; ++t) {
        const std::string ts = stem + "_t" + std::to_string(t);
        const std::string xt = ts + "_x";
        model->net.addOp(makeSlice(ts + "_slice_x", seq_bm, xt, t));
        mark();
        std::string gx = g.fcWith(xt, wx, bx);
        mark();
        std::string gh = g.fcWith(h, wh, bh);
        mark();
        gx = g.reshape(gx, {-1, 3, hidden});
        gh = g.reshape(gh, {-1, 3, hidden});

        auto gate = [&](const std::string& blob, int64_t idx,
                        const char* tag) {
            const std::string y = ts + "_" + tag;
            model->net.addOp(
                makeSlice(ts + std::string("_slice_") + tag, blob, y, idx));
            mark();
            return y;
        };
        const std::string gxr = gate(gx, 0, "gxr");
        const std::string gxz = gate(gx, 1, "gxz");
        const std::string gxn = gate(gx, 2, "gxn");
        const std::string ghr = gate(gh, 0, "ghr");
        const std::string ghz = gate(gh, 1, "ghz");
        const std::string ghn = gate(gh, 2, "ghn");

        const std::string r = g.sigmoid(g.add(gxr, ghr));
        mark();
        std::string z = g.sigmoid(g.add(gxz, ghz));
        mark();
        if (!att3d.empty()) {
            const std::string at = ts + "_att";
            model->net.addOp(makeSlice(ts + "_slice_att", att3d, at, t));
            mark();
            z = g.mul(z, at);  // attentional update gate
            mark();
        }
        const std::string n = g.tanhAct(g.add(gxn, g.mul(r, ghn)));
        mark();
        // h' = (1 - z) * n + z * h  ==  (n - z*n) + z*h
        const std::string zn = g.mul(z, n);
        mark();
        const std::string zh = g.mul(z, h);
        mark();
        h = g.add(g.sub(n, zn), zh);
        mark();
        hs.push_back(h);
    }

    const std::string stacked = g.concat(hs);                // [B, T*H]
    const std::string hseq_bm = g.reshape(stacked, {-1, steps, hidden});
    return {hseq_bm, h};
}

}  // namespace

Model
buildDIEN(const ModelOptions& opts)
{
    Model model(ModelId::kDIEN, modelName(ModelId::kDIEN));
    GraphBuilder g(&model);
    const int64_t dim = 64;
    const int64_t hidden = 64;
    model.features.latentDim = static_cast<int>(dim);
    model.features.attention = true;
    const int steps = std::max(1, opts.dienSteps);

    const int64_t item_rows = scaledRows(250000, opts);

    // Candidate item embedding.
    const std::string target =
        g.embeddingBag("target", item_rows, dim, 1, opts.zipfExponent);

    // Behavior sequence: gather T rows per sample, batch-major.
    const std::string rows = g.embeddingGather(
        "behavior", item_rows, dim, steps, opts.zipfExponent);
    const std::string seq_bm = g.reshape(rows, {-1, steps, dim});

    std::string hseq_bm;   // [B, T, H]
    std::string hlast;     // [B, H]
    std::string att_bm;    // [B, T]

    if (opts.dienFusedGru) {
        // Fused-operator ablation path: single GRULayer ops.
        const std::string seq_tm = g.transpose(seq_bm);      // [T, B, D]
        const auto [hseq1, hlast1] = g.gru(seq_tm, dim, hidden);
        (void)hlast1;
        const std::string hseq1_bm = g.transpose(hseq1);     // [B, T, H]
        const std::string target_col = g.reshape(target, {-1, dim, 1});
        const std::string scores3d = g.batchMatMul(hseq1_bm, target_col);
        const std::string scores = g.reshape(scores3d, {-1, steps});
        att_bm = g.softmax(scores);
        const std::string att_tm = g.transpose(att_bm);      // [T, B]
        const auto [hseq2, hlast2] = g.gru(hseq1, hidden, hidden, att_tm);
        (void)hseq2;
        hlast = hlast2;
    } else {
        // Framework-faithful unrolled path (what the paper measures).
        const auto [hseq1_bm, hlast1] = unrolledGru(
            g, &model, seq_bm, dim, hidden, steps, "");
        (void)hlast1;
        const std::string target_col = g.reshape(target, {-1, dim, 1});
        const std::string scores3d = g.batchMatMul(hseq1_bm, target_col);
        const std::string scores = g.reshape(scores3d, {-1, steps});
        att_bm = g.softmax(scores);
        const auto [hseq2_bm, hlast2] = unrolledGru(
            g, &model, hseq1_bm, hidden, hidden, steps, att_bm);
        (void)hseq2_bm;
        hlast = hlast2;
    }

    // Output MLP over [final interest ; target].
    const std::string fused = g.concat({hlast, target});
    const std::string score =
        g.mlp(fused, hidden + dim, {200, 80, 1}, /*top=*/true);
    g.finish(score);
    model.features.lookupsPerTable /= std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

}  // namespace builders
}  // namespace recstack
