#ifndef RECSTACK_MODELS_BUILDERS_INTERNAL_H_
#define RECSTACK_MODELS_BUILDERS_INTERNAL_H_

/**
 * @file
 * Internal declarations of the per-model builder functions; the public
 * entry point is buildModel() in model.h.
 */

#include "models/model.h"

namespace recstack {
namespace builders {

Model buildNCF(const ModelOptions& opts);
Model buildRM1(const ModelOptions& opts);
Model buildRM2(const ModelOptions& opts);
Model buildRM3(const ModelOptions& opts);
Model buildWnD(const ModelOptions& opts);
Model buildMTWnD(const ModelOptions& opts);
Model buildDIN(const ModelOptions& opts);
Model buildDIEN(const ModelOptions& opts);

/** Scale a table row count by opts.tableScale with a sane floor. */
int64_t scaledRows(int64_t rows, const ModelOptions& opts);

/** Shared parameterization of the DLRM-family models. */
struct DlrmConfig {
    ModelId id;
    int64_t denseDim;
    std::vector<int64_t> bottom;
    int numTables;
    int64_t tableRows;
    int64_t embDim;
    int64_t lookups;
    std::vector<int64_t> top;
};

/** Config of RM1 / RM2 / RM3 (panics on other ids). */
DlrmConfig dlrmConfig(ModelId id);

}  // namespace builders
}  // namespace recstack

#endif  // RECSTACK_MODELS_BUILDERS_INTERNAL_H_
