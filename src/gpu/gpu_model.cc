#include "gpu/gpu_model.h"

#include <algorithm>
#include <cmath>

namespace recstack {
namespace {

/// Threads worth of independent output work needed per SM before the
/// GEMM pipeline approaches its sustained throughput.
constexpr double kElemsPerSmForFullOccupancy = 1024.0;

/// Floor on the occupancy factor: even a batch-1 kernel keeps a few
/// warps busy.
constexpr double kOccupancyFloor = 0.02;

/// Memory-side underutilization: a partially occupied SM array cannot
/// keep enough loads in flight to saturate GDDR, but degrades more
/// gently than compute (sub-linear exponent).
constexpr double kMemOccupancyExponent = 0.7;

}  // namespace

GpuModel::GpuModel(const GpuConfig& cfg) : cfg_(cfg) {}

GpuOpTime
GpuModel::kernelTime(const KernelProfile& kp) const
{
    GpuOpTime t;
    t.opType = kp.opType;
    t.opName = kp.opName;

    // --- Occupancy from the kernel's independent output elements ---
    const double out_elems =
        static_cast<double>(kp.bytesWritten()) / 4.0;
    const double occupancy = std::clamp(
        out_elems / (kElemsPerSmForFullOccupancy *
                     static_cast<double>(cfg_.smCount)),
        kOccupancyFloor, 1.0);

    // --- Compute roofline ---
    // Narrow GEMM outputs (DIN's 36-wide local activation units)
    // cannot use full-width MMA tiles regardless of batch size.
    double width_factor = 1.0;
    if (kp.gemmWidth > 0) {
        width_factor = std::clamp(
            static_cast<double>(kp.gemmWidth) / 128.0, 1.0 / 128.0, 1.0);
    }
    const double flops = static_cast<double>(kp.fmaFlops);
    double compute = 0.0;
    if (flops > 0.0) {
        compute =
            flops / (cfg_.effTflops * 1e12 * occupancy * width_factor);
    }

    // --- Memory roofline: split traffic by access pattern ---
    uint64_t random_bytes = 0;
    uint64_t stream_bytes = 0;
    for (const auto& s : kp.streams) {
        // Strided chunk traffic (concat/slice data movement) loses
        // coalescing on GPUs just like true gathers.
        if (s.pattern != AccessPattern::kSequential) {
            random_bytes += s.totalBytes();
        } else {
            stream_bytes += s.totalBytes();
        }
    }
    const double mem_derate = std::pow(occupancy, kMemOccupancyExponent);
    const double memory =
        (static_cast<double>(stream_bytes) /
             (cfg_.memGBs * 1e9 * cfg_.streamEfficiency) +
         static_cast<double>(random_bytes) /
             (cfg_.memGBs * 1e9 * cfg_.gatherEfficiency)) /
        std::max(mem_derate, 1e-3);

    // --- Serialized phases (fused recurrent kernels) ---
    const double steps =
        static_cast<double>(std::max<uint64_t>(1, kp.serialSteps));
    const double body = std::max(compute, memory);
    const double serialization =
        steps > 1.0 ? (steps - 1.0) * cfg_.smallKernelFloorSec : 0.0;

    t.launchSeconds = cfg_.kernelLaunchSec + cfg_.hostDispatchSec;
    t.computeSeconds = compute;
    t.memorySeconds = memory;
    t.seconds = t.launchSeconds + body + serialization;
    return t;
}

GpuRunResult
GpuModel::simulateNet(const std::vector<KernelProfile>& kernels,
                      uint64_t input_bytes, size_t input_blobs) const
{
    GpuRunResult r;
    r.opTimes.reserve(kernels.size());
    for (const auto& kp : kernels) {
        GpuOpTime t = kernelTime(kp);
        r.kernelSeconds += t.seconds;
        r.opTimes.push_back(std::move(t));
    }
    // A net with no input payload stages no cudaMemcpy at all:
    // charging PCIe latency there (the old max(1, input_blobs))
    // skewed dataCommFraction for tiny nets. That includes the
    // zero-bytes-with-declared-blobs corner — empty blobs are elided
    // by the framework's staging, not copied one at a time. Any
    // nonzero payload still pays at least one per-copy latency, even
    // if the caller forgot to count blobs.
    const size_t copies =
        input_bytes == 0 ? 0 : std::max<size_t>(1, input_blobs);
    r.transferSeconds =
        cfg_.pcieLatencySec * static_cast<double>(copies) +
        static_cast<double>(input_bytes) / (cfg_.pcieGBs * 1e9);
    r.totalSeconds = r.kernelSeconds + r.transferSeconds;
    return r;
}

}  // namespace recstack
