#ifndef RECSTACK_GPU_GPU_MODEL_H_
#define RECSTACK_GPU_GPU_MODEL_H_

/**
 * @file
 * Analytical GPU inference model (GTX 1080 Ti / T4).
 *
 * The paper's GPU findings are first-order consequences of three
 * mechanisms, all modeled here per kernel:
 *  - roofline: max(compute time, memory time) with an occupancy
 *    factor (small batches underfill the SM array);
 *  - per-kernel launch/driver overhead (concat-heavy attention
 *    models pay it thousands of times);
 *  - PCIe input transfer per batch (Fig. 4's data-communication
 *    fraction, which grows with batch size because compute
 *    accelerates sub-linearly while transfer is linear).
 */

#include <string>
#include <vector>

#include "platform/platform.h"
#include "profile/kernel_profile.h"

namespace recstack {

/** Per-kernel timing detail. */
struct GpuOpTime {
    std::string opType;
    std::string opName;
    double seconds = 0.0;
    double launchSeconds = 0.0;
    double computeSeconds = 0.0;
    double memorySeconds = 0.0;
};

/** One net execution on the GPU. */
struct GpuRunResult {
    double kernelSeconds = 0.0;     ///< sum of kernel times
    double transferSeconds = 0.0;   ///< PCIe input movement
    double totalSeconds = 0.0;
    std::vector<GpuOpTime> opTimes;

    /** Fig. 4 metric: data-communication share of end-to-end time. */
    double dataCommFraction() const
    {
        return totalSeconds > 0.0 ? transferSeconds / totalSeconds : 0.0;
    }
};

/** Roofline + overhead GPU model. */
class GpuModel
{
  public:
    explicit GpuModel(const GpuConfig& cfg);

    /** Time one kernel (launch + max(compute, memory)). */
    GpuOpTime kernelTime(const KernelProfile& kp) const;

    /**
     * Time a whole net: all kernels plus the host-to-device input
     * transfer of @c input_bytes spread over @c input_blobs separate
     * copies (frameworks stage one cudaMemcpy per input tensor, so
     * the per-copy latency multiplies).
     */
    GpuRunResult simulateNet(const std::vector<KernelProfile>& kernels,
                             uint64_t input_bytes,
                             size_t input_blobs = 1) const;

    const GpuConfig& config() const { return cfg_; }

  private:
    GpuConfig cfg_;
};

}  // namespace recstack

#endif  // RECSTACK_GPU_GPU_MODEL_H_
