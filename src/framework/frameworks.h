#ifndef RECSTACK_FRAMEWORK_FRAMEWORKS_H_
#define RECSTACK_FRAMEWORK_FRAMEWORKS_H_

/**
 * @file
 * Deep-learning framework frontends (Fig. 7).
 *
 * The paper compares Caffe2 and TensorFlow operator breakdowns for
 * the DLRM-based models and shows the same bottlenecks at different
 * operator granularity: Caffe2's fused SparseLengthsSum equals
 * TensorFlow's ResourceGather + Sum pair, and FC maps to FusedMatMul.
 *
 * The Caffe2 frontend is recstack's native model zoo; the TensorFlow
 * frontend rebuilds the same DLRM architectures with TF operator
 * granularity (separate gather, explicit [B, P, D] intermediate,
 * separate pooling reduction) and TF type names.
 */

#include "models/model.h"

namespace recstack {

/** Supported framework frontends. */
enum class FrameworkId { kCaffe2, kTensorFlow };

const char* frameworkName(FrameworkId id);

/**
 * Build a DLRM-family model (RM1/RM2/RM3) in the given framework's
 * operator granularity. Caffe2 delegates to buildModel().
 */
Model buildModelInFramework(ModelId id, FrameworkId fw,
                            const ModelOptions& opts = {});

}  // namespace recstack

#endif  // RECSTACK_FRAMEWORK_FRAMEWORKS_H_
