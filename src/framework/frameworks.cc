#include "framework/frameworks.h"

#include <algorithm>

#include "models/builder_util.h"
#include "models/builders_internal.h"

namespace recstack {

const char*
frameworkName(FrameworkId id)
{
    switch (id) {
      case FrameworkId::kCaffe2: return "Caffe2";
      case FrameworkId::kTensorFlow: return "TensorFlow";
    }
    return "?";
}

namespace {

/** Rename the most recently added op to a TF-granularity label. */
void
aliasLast(Model* model, const char* tf_name)
{
    model->net.ops().back()->setDisplayType(tf_name);
}

/**
 * DLRM in TensorFlow operator granularity: embedding bags become
 * ResourceGather -> Reshape -> Sum chains with an explicit [B, P, D]
 * intermediate (extra memory traffic TF really pays), and dense
 * layers report as FusedMatMul.
 */
Model
buildDlrmTensorFlow(const builders::DlrmConfig& cfg,
                    const ModelOptions& opts)
{
    Model model(cfg.id, std::string(modelName(cfg.id)) + "-tf");
    GraphBuilder g(&model);
    model.features.latentDim = static_cast<int>(cfg.embDim);

    auto tf_mlp = [&](const std::string& x, int64_t in_dim,
                      const std::vector<int64_t>& widths, bool top) {
        std::string cur = x;
        int64_t cur_dim = in_dim;
        for (size_t i = 0; i < widths.size(); ++i) {
            cur = g.fc(cur, cur_dim, widths[i], top);
            aliasLast(&model, "FusedMatMul");
            if (i + 1 < widths.size()) {
                cur = g.relu(cur);
            }
            cur_dim = widths[i];
        }
        return cur;
    };

    const std::string dense = g.denseInput("dense", cfg.denseDim);
    std::string bottom_out = tf_mlp(dense, cfg.denseDim, cfg.bottom,
                                    /*top=*/false);
    bottom_out = g.relu(bottom_out);

    std::vector<std::string> pooled;
    pooled.push_back(bottom_out);
    const int64_t rows = builders::scaledRows(cfg.tableRows, opts);
    for (int t = 0; t < cfg.numTables; ++t) {
        const std::string prefix = "emb" + std::to_string(t);
        // ResourceGather: [B * P, D] rows...
        const std::string gathered = g.embeddingGather(
            prefix, rows, cfg.embDim, cfg.lookups, opts.zipfExponent);
        aliasLast(&model, "ResourceGather");
        // ...reshaped to [B, P, D]...
        const std::string shaped =
            g.reshape(gathered, {-1, cfg.lookups, cfg.embDim});
        // ...pooled with an explicit Sum reduction.
        const std::string stem = g.uniq("tfsum");
        model.net.addOp(makeReduceSum(stem, shaped, stem + "_y"));
        aliasLast(&model, "Sum");
        pooled.push_back(stem + "_y");
    }

    const std::string interact = g.concat(pooled);
    aliasLast(&model, "ConcatV2");
    const int64_t interact_dim =
        cfg.bottom.back() + cfg.numTables * cfg.embDim;
    const std::string top_out =
        tf_mlp(interact, interact_dim, cfg.top, /*top=*/true);
    g.finish(top_out);
    model.features.lookupsPerTable /=
        std::max(1, model.features.numTables);
    model.net.validate();
    return model;
}

}  // namespace

Model
buildModelInFramework(ModelId id, FrameworkId fw, const ModelOptions& opts)
{
    if (fw == FrameworkId::kCaffe2) {
        return buildModel(id, opts);
    }
    return buildDlrmTensorFlow(builders::dlrmConfig(id), opts);
}

}  // namespace recstack
