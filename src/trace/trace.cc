#include "trace/trace.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace recstack {
namespace {

constexpr const char* kMagic = "recstack-trace";
constexpr int kVersion = 1;

const char*
patternName(AccessPattern p)
{
    switch (p) {
      case AccessPattern::kSequential: return "seq";
      case AccessPattern::kStrided: return "stride";
      case AccessPattern::kRandom: return "random";
    }
    return "?";
}

bool
patternFromName(const std::string& name, AccessPattern* out)
{
    if (name == "seq") {
        *out = AccessPattern::kSequential;
    } else if (name == "stride") {
        *out = AccessPattern::kStrided;
    } else if (name == "random") {
        *out = AccessPattern::kRandom;
    } else {
        return false;
    }
    return true;
}

/** Tokenize "k=v" pairs of one record line. */
class Fields
{
  public:
    explicit Fields(const std::string& line)
    {
        std::istringstream iss(line);
        std::string token;
        iss >> token;  // record tag, dropped
        while (iss >> token) {
            const size_t eq = token.find('=');
            if (eq != std::string::npos) {
                kv_.emplace_back(token.substr(0, eq),
                                 token.substr(eq + 1));
            }
        }
    }

    std::string str(const std::string& key,
                    const std::string& fallback = "") const
    {
        for (const auto& [k, v] : kv_) {
            if (k == key) {
                return v;
            }
        }
        return fallback;
    }

    uint64_t u64(const std::string& key, uint64_t fallback = 0) const
    {
        const std::string v = str(key);
        return v.empty() ? fallback : std::stoull(v);
    }

    double f64(const std::string& key, double fallback = 0.0) const
    {
        const std::string v = str(key);
        return v.empty() ? fallback : std::stod(v);
    }

  private:
    std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace

void
writeTrace(std::ostream& out, const TraceMeta& meta,
           const std::vector<KernelProfile>& kernels)
{
    out << kMagic << " v" << kVersion << "\n";
    out << "meta model=" << meta.model << " framework=" << meta.framework
        << " batch=" << meta.batch << " inputBytes=" << meta.inputBytes
        << " inputBlobs=" << meta.inputBlobs
        << " kernels=" << kernels.size() << "\n";
    for (const auto& kp : kernels) {
        out << "kernel type=" << kp.opType << " name=" << kp.opName
            << " fma=" << kp.fmaFlops << " vec=" << kp.vecElemOps
            << " scalar=" << kp.scalarOps
            << " simdScalable=" << kp.simdScalableOps
            << " reload=" << kp.reloadLoadElems
            << " serial=" << kp.serialSteps
            << " gemmWidth=" << kp.gemmWidth
            << " codeBytes=" << kp.codeFootprintBytes
            << " codeRegion=" << kp.codeRegion
            << " codeIter=" << kp.codeIterations
            << " dispatchOps=" << kp.dispatchOps
            << " dispatchCode=" << kp.dispatchCodeBytes << "\n";
        for (const auto& s : kp.streams) {
            out << "stream region=" << s.region
                << " pattern=" << patternName(s.pattern)
                << " accesses=" << s.accesses
                << " chunk=" << s.chunkBytes
                << " footprint=" << s.footprintBytes
                << " stride=" << s.strideBytes
                << " write=" << (s.isWrite ? 1 : 0)
                << " zipf=" << s.zipfExponent << " mlp=" << s.mlp
                << "\n";
        }
        for (const auto& b : kp.branches) {
            out << "branch count=" << b.count
                << " taken=" << b.takenProbability
                << " rand=" << b.randomness
                << " simd=" << (b.scalesWithSimd ? 1 : 0) << "\n";
        }
        out << "endkernel\n";
    }
    out << "end\n";
}

bool
readTrace(std::istream& in, TraceMeta* meta,
          std::vector<KernelProfile>* kernels, std::string* error)
{
    auto fail = [error](const std::string& msg) {
        if (error != nullptr) {
            *error = msg;
        }
        return false;
    };

    std::string line;
    if (!std::getline(in, line) ||
        line.rfind(kMagic, 0) != 0) {
        return fail("not a recstack trace (bad magic)");
    }

    kernels->clear();
    KernelProfile current;
    bool in_kernel = false;
    bool saw_end = false;

    while (std::getline(in, line)) {
        if (line.empty()) {
            continue;
        }
        std::istringstream tag_stream(line);
        std::string tag;
        tag_stream >> tag;
        const Fields f(line);

        if (tag == "meta") {
            meta->model = f.str("model");
            meta->framework = f.str("framework", "Caffe2");
            meta->batch = static_cast<int64_t>(f.u64("batch"));
            meta->inputBytes = f.u64("inputBytes");
            meta->inputBlobs = f.u64("inputBlobs");
        } else if (tag == "kernel") {
            if (in_kernel) {
                return fail("nested kernel record");
            }
            in_kernel = true;
            current = KernelProfile{};
            current.opType = f.str("type");
            current.opName = f.str("name");
            current.fmaFlops = f.u64("fma");
            current.vecElemOps = f.u64("vec");
            current.scalarOps = f.u64("scalar");
            current.simdScalableOps = f.u64("simdScalable");
            current.reloadLoadElems = f.u64("reload");
            current.serialSteps = f.u64("serial", 1);
            current.gemmWidth = f.u64("gemmWidth");
            current.codeFootprintBytes = f.u64("codeBytes");
            current.codeRegion = f.str("codeRegion");
            current.codeIterations = f.u64("codeIter", 1);
            current.dispatchOps = f.u64("dispatchOps");
            current.dispatchCodeBytes = f.u64("dispatchCode");
        } else if (tag == "stream") {
            if (!in_kernel) {
                return fail("stream outside kernel");
            }
            MemStream s;
            s.region = f.str("region");
            if (!patternFromName(f.str("pattern"), &s.pattern)) {
                return fail("unknown access pattern '" +
                            f.str("pattern") + "'");
            }
            s.accesses = f.u64("accesses");
            s.chunkBytes = f.u64("chunk", 64);
            s.footprintBytes = f.u64("footprint");
            s.strideBytes = f.u64("stride");
            s.isWrite = f.u64("write") != 0;
            s.zipfExponent = f.f64("zipf");
            s.mlp = f.f64("mlp", 4.0);
            current.streams.push_back(std::move(s));
        } else if (tag == "branch") {
            if (!in_kernel) {
                return fail("branch outside kernel");
            }
            BranchStream b;
            b.count = f.u64("count");
            b.takenProbability = f.f64("taken", 1.0);
            b.randomness = f.f64("rand");
            b.scalesWithSimd = f.u64("simd") != 0;
            current.branches.push_back(b);
        } else if (tag == "endkernel") {
            if (!in_kernel) {
                return fail("endkernel without kernel");
            }
            kernels->push_back(std::move(current));
            current = KernelProfile{};
            in_kernel = false;
        } else if (tag == "end") {
            saw_end = true;
            break;
        } else {
            return fail("unknown record '" + tag + "'");
        }
    }
    if (in_kernel) {
        return fail("truncated trace: kernel not closed");
    }
    if (!saw_end) {
        return fail("truncated trace: missing end record");
    }
    return true;
}

bool
saveTrace(const std::string& path, const TraceMeta& meta,
          const std::vector<KernelProfile>& kernels, std::string* error)
{
    std::ofstream out(path);
    if (!out) {
        if (error != nullptr) {
            *error = "cannot open '" + path + "' for writing";
        }
        return false;
    }
    writeTrace(out, meta, kernels);
    return static_cast<bool>(out);
}

bool
loadTrace(const std::string& path, TraceMeta* meta,
          std::vector<KernelProfile>* kernels, std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot open '" + path + "'";
        }
        return false;
    }
    return readTrace(in, meta, kernels, error);
}

}  // namespace recstack
