#ifndef RECSTACK_TRACE_TRACE_H_
#define RECSTACK_TRACE_TRACE_H_

/**
 * @file
 * Kernel-profile traces: record a net execution's workload
 * descriptors to a portable text file and replay them later on any
 * platform model — the "profile once, simulate everywhere" workflow
 * that near-memory-processing studies (RecNMP et al.) use with
 * production embedding traces.
 *
 * Format: line-oriented `key=value` records, versioned, human
 * diffable. Blob/region names must not contain whitespace (recstack
 * never generates such names).
 */

#include <iosfwd>
#include <string>
#include <vector>

#include "profile/kernel_profile.h"

namespace recstack {

/** Header information carried by a trace. */
struct TraceMeta {
    std::string model;
    std::string framework = "Caffe2";
    int64_t batch = 0;
    uint64_t inputBytes = 0;   ///< wire bytes (PCIe replay)
    uint64_t inputBlobs = 0;   ///< staged-copy count (PCIe replay)
};

/** Serialize a trace to a stream. */
void writeTrace(std::ostream& out, const TraceMeta& meta,
                const std::vector<KernelProfile>& kernels);

/**
 * Parse a trace from a stream.
 * @return false (with *error set) on malformed input.
 */
bool readTrace(std::istream& in, TraceMeta* meta,
               std::vector<KernelProfile>* kernels, std::string* error);

/** File-path convenience wrappers. */
bool saveTrace(const std::string& path, const TraceMeta& meta,
               const std::vector<KernelProfile>& kernels,
               std::string* error);
bool loadTrace(const std::string& path, TraceMeta* meta,
               std::vector<KernelProfile>* kernels, std::string* error);

}  // namespace recstack

#endif  // RECSTACK_TRACE_TRACE_H_
