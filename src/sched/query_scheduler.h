#ifndef RECSTACK_SCHED_QUERY_SCHEDULER_H_
#define RECSTACK_SCHED_QUERY_SCHEDULER_H_

/**
 * @file
 * QueryScheduler: a DeepRecSys-style heterogeneity-aware inference
 * router built on top of the characterization engine.
 *
 * The paper's Section III-B notes that "exploiting hardware
 * heterogeneity to schedule inferences on optimum platforms based on
 * use cases (i.e., model architecture, inference batch-size)
 * significantly improves recommendation performance". This module
 * operationalizes the Fig. 5 optimal-platform grid: given a latency
 * SLA, it picks the platform and batch size that maximize throughput
 * while honoring the tail budget.
 */

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/sweep.h"

namespace recstack {

/**
 * Linear extrapolation of the latency curve above the last grid knot
 * (@c b0 < @c b1 <= @c batch, with measured seconds @c s0 and @c s1),
 * clamped so a noisy last segment can never produce a nonsensical
 * prediction: a measurement blip with s1 < s0 gives a negative slope,
 * which for large enough batches extrapolates straight through zero
 * into negative latency. The clamp floors the result at the last
 * knot's per-sample scaling, s1 * batch / b1 — the latency the batch
 * would take if every sample cost what a batch-b1 sample costs — which
 * is positive and strictly increasing in batch. Exposed as a free
 * function so the regression test can drive it with a noisy segment
 * directly (the characterization grid itself is monotone).
 */
double extrapolateLatencyAboveGrid(int64_t b0, double s0, int64_t b1,
                                   double s1, int64_t batch);

/** Routing decision for one (model, batch) query. */
struct ScheduleDecision {
    size_t platformIdx = 0;
    int64_t batch = 0;
    double expectedLatency = 0.0;
    bool meetsSla = false;
};

/** Best sustainable operating point under an SLA. */
struct ThroughputPoint {
    size_t platformIdx = 0;
    int64_t batch = 0;
    double latencySeconds = 0.0;
    double samplesPerSecond = 0.0;
    bool feasible = false;
};

/**
 * Heterogeneity-aware router over a SweepCache's platform set.
 * Latencies between the cached batch grid points are interpolated
 * linearly in batch size (latency is convex and near-affine in batch
 * across the grid the paper uses).
 */
class QueryScheduler
{
  public:
    /**
     * @param sweep  characterization grid (not owned; must outlive
     *               the scheduler)
     * @param batch_grid batch sizes used as interpolation knots;
     *               defaults to the paper's 1..16384 axis
     */
    explicit QueryScheduler(SweepCache* sweep,
                            std::vector<int64_t> batch_grid = {});

    /** Expected latency of (model, batch) on one platform. */
    double latency(ModelId model, size_t platform_idx, int64_t batch);

    /**
     * Route one query of the given batch to the fastest platform.
     * Ties resolve deterministically to the lowest platform index
     * (platforms() order: CPUs before GPUs).
     */
    ScheduleDecision route(ModelId model, int64_t batch,
                           double sla_seconds);

    /**
     * Largest grid batch whose latency on the platform stays within
     * the SLA (0 when even batch 1 misses it).
     */
    int64_t maxBatchUnderSla(ModelId model, size_t platform_idx,
                             double sla_seconds);

    /**
     * The operating point (platform, batch) that maximizes
     * samples/second subject to the SLA.
     */
    ThroughputPoint bestThroughputUnderSla(ModelId model,
                                           double sla_seconds);

    const std::vector<int64_t>& batchGrid() const { return batchGrid_; }

    /** The underlying characterization grid (not owned). */
    SweepCache* sweep() const { return sweep_; }

    // ------------------------------------------------------------------
    // DeepRecSys-style CPU/GPU split: per-model batch-size thresholds.
    //
    // The heterogeneous serving engine asks the scheduler, per dynamic
    // batch, whether the batch should stay on the CPU worker pool
    // (small / latency-critical) or defer to the accelerator lane
    // (large / throughput-oriented). The decision is a single per-model
    // threshold on the batch size, tuned online by the hill-climbing
    // tuner (sched/hill_climb.h) against the p99 SLA. Not synchronized:
    // callers serialize externally (the engine reads thresholds under
    // its queue lock; the tuner writes between engine runs).
    // ------------------------------------------------------------------

    /** Threshold meaning "never defer to the accelerator" (default). */
    static constexpr int64_t kNoGpuThreshold =
        std::numeric_limits<int64_t>::max();

    /**
     * Set the model's CPU/GPU split point: batches of size >=
     * threshold defer to the accelerator lane. Must be >= 1; a
     * threshold of 1 routes every batch, kNoGpuThreshold routes none.
     */
    void setGpuThreshold(ModelId model, int64_t threshold);

    /** The model's split point (kNoGpuThreshold when never set). */
    int64_t gpuThreshold(ModelId model) const;

    /** True when a batch of this size defers to the accelerator. */
    bool routesToGpu(ModelId model, int64_t batch) const
    {
        return batch >= gpuThreshold(model);
    }

    // ------------------------------------------------------------------
    // PIM lane split: the same per-model threshold machinery for the
    // near-memory platform (src/pim/). An SLS-heavy model's large
    // batches amortize the host<->DPU transfer latency, so the tuner
    // lowers its PIM threshold; FC-heavy models keep kNoPimThreshold.
    // A batch that crosses both thresholds defers to the GPU lane
    // (the engine checks routesToGpu first), so enabling PIM never
    // steals traffic from an already-tuned GPU split.
    // ------------------------------------------------------------------

    /** Threshold meaning "never defer to the PIM lane" (default). */
    static constexpr int64_t kNoPimThreshold =
        std::numeric_limits<int64_t>::max();

    /**
     * Set the model's CPU/PIM split point: batches of size >=
     * threshold defer to the PIM lane. Must be >= 1; a threshold of
     * 1 routes every batch, kNoPimThreshold routes none.
     */
    void setPimThreshold(ModelId model, int64_t threshold);

    /** The model's PIM split point (kNoPimThreshold when never set). */
    int64_t pimThreshold(ModelId model) const;

    /** True when a batch of this size defers to the PIM lane. */
    bool routesToPim(ModelId model, int64_t batch) const
    {
        return batch >= pimThreshold(model);
    }

  private:
    SweepCache* sweep_;
    std::vector<int64_t> batchGrid_;
    std::map<ModelId, int64_t> gpuThresholds_;
    std::map<ModelId, int64_t> pimThresholds_;
};

}  // namespace recstack

#endif  // RECSTACK_SCHED_QUERY_SCHEDULER_H_
