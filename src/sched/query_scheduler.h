#ifndef RECSTACK_SCHED_QUERY_SCHEDULER_H_
#define RECSTACK_SCHED_QUERY_SCHEDULER_H_

/**
 * @file
 * QueryScheduler: a DeepRecSys-style heterogeneity-aware inference
 * router built on top of the characterization engine.
 *
 * The paper's Section III-B notes that "exploiting hardware
 * heterogeneity to schedule inferences on optimum platforms based on
 * use cases (i.e., model architecture, inference batch-size)
 * significantly improves recommendation performance". This module
 * operationalizes the Fig. 5 optimal-platform grid: given a latency
 * SLA, it picks the platform and batch size that maximize throughput
 * while honoring the tail budget.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/sweep.h"

namespace recstack {

/** Routing decision for one (model, batch) query. */
struct ScheduleDecision {
    size_t platformIdx = 0;
    int64_t batch = 0;
    double expectedLatency = 0.0;
    bool meetsSla = false;
};

/** Best sustainable operating point under an SLA. */
struct ThroughputPoint {
    size_t platformIdx = 0;
    int64_t batch = 0;
    double latencySeconds = 0.0;
    double samplesPerSecond = 0.0;
    bool feasible = false;
};

/**
 * Heterogeneity-aware router over a SweepCache's platform set.
 * Latencies between the cached batch grid points are interpolated
 * linearly in batch size (latency is convex and near-affine in batch
 * across the grid the paper uses).
 */
class QueryScheduler
{
  public:
    /**
     * @param sweep  characterization grid (not owned; must outlive
     *               the scheduler)
     * @param batch_grid batch sizes used as interpolation knots;
     *               defaults to the paper's 1..16384 axis
     */
    explicit QueryScheduler(SweepCache* sweep,
                            std::vector<int64_t> batch_grid = {});

    /** Expected latency of (model, batch) on one platform. */
    double latency(ModelId model, size_t platform_idx, int64_t batch);

    /** Route one query of the given batch to the fastest platform. */
    ScheduleDecision route(ModelId model, int64_t batch,
                           double sla_seconds);

    /**
     * Largest grid batch whose latency on the platform stays within
     * the SLA (0 when even batch 1 misses it).
     */
    int64_t maxBatchUnderSla(ModelId model, size_t platform_idx,
                             double sla_seconds);

    /**
     * The operating point (platform, batch) that maximizes
     * samples/second subject to the SLA.
     */
    ThroughputPoint bestThroughputUnderSla(ModelId model,
                                           double sla_seconds);

    const std::vector<int64_t>& batchGrid() const { return batchGrid_; }

    /** The underlying characterization grid (not owned). */
    SweepCache* sweep() const { return sweep_; }

  private:
    SweepCache* sweep_;
    std::vector<int64_t> batchGrid_;
};

}  // namespace recstack

#endif  // RECSTACK_SCHED_QUERY_SCHEDULER_H_
