#include "sched/hill_climb.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "obs/metrics.h"

namespace recstack {
namespace {

void
validate(const HillClimbConfig& cfg)
{
    RECSTACK_CHECK(!cfg.thresholdGrid.empty(),
                   "threshold grid must be non-empty");
    RECSTACK_CHECK(cfg.slaSeconds > 0.0, "SLA must be > 0");
    RECSTACK_CHECK(cfg.epochSeconds > 0.0, "epoch duration must be > 0");
    RECSTACK_CHECK(cfg.maxEpochs >= 1, "need at least one epoch");
    int64_t prev = 0;
    for (int64_t t : cfg.thresholdGrid) {
        RECSTACK_CHECK(t >= 1, "thresholds must be >= 1");
        RECSTACK_CHECK(t > prev, "threshold grid must be ascending");
        prev = t;
    }
}

/**
 * Memoizing measurement harness: reset histogram -> epoch -> read the
 * snapshot back. One EpochFn call per distinct grid index, so a climb
 * that revisits a neighbor pays nothing (the engine is deterministic
 * at a fixed config — re-measuring would reproduce the same numbers).
 */
class Measurer
{
  public:
    Measurer(const HillClimbConfig& cfg, const EpochFn& epoch,
             HillClimbResult* result)
        : cfg_(cfg),
          epoch_(epoch),
          result_(result),
          // Bounds only matter if nothing registered the histogram
          // yet (first registration wins); these match the serving
          // engine's canonical query-latency histogram.
          hist_(obs::MetricsRegistry::global().histogram(
              cfg.histogramName, 0.0, 1.0, 1000))
    {
    }

    /** Measure grid index @c i (memoized). */
    const ThresholdMeasurement& at(size_t i)
    {
        auto it = memo_.find(i);
        if (it != memo_.end()) {
            return it->second;
        }
        const int64_t threshold = cfg_.thresholdGrid[i];
        hist_.reset();
        epoch_(threshold);
        const obs::HistogramSnapshot snap = hist_.snapshot();

        ThresholdMeasurement m;
        m.threshold = threshold;
        m.qps = static_cast<double>(snap.total) / cfg_.epochSeconds;
        m.p99 = snap.percentile(0.99);
        m.feasible = m.p99 <= cfg_.slaSeconds;
        result_->history.push_back(m);
        ++result_->epochs;
        return memo_.emplace(i, m).first->second;
    }

    bool budgetLeft() const { return result_->epochs < cfg_.maxEpochs; }
    bool measured(size_t i) const { return memo_.count(i) != 0; }

  private:
    const HillClimbConfig& cfg_;
    const EpochFn& epoch_;
    HillClimbResult* result_;
    obs::LatencyHistogram& hist_;
    std::map<size_t, ThresholdMeasurement> memo_;
};

/** Fill best/bestThreshold/anyFeasible from the measured history. */
void
finalize(HillClimbResult* result)
{
    RECSTACK_CHECK(!result->history.empty(), "no epochs ran");
    const ThresholdMeasurement* best = &result->history.front();
    for (const ThresholdMeasurement& m : result->history) {
        if (thresholdMeasurementBetter(m, *best)) {
            best = &m;
        }
        result->anyFeasible = result->anyFeasible || m.feasible;
    }
    result->best = *best;
    result->bestThreshold = best->threshold;
}

}  // namespace

bool
thresholdMeasurementBetter(const ThresholdMeasurement& a,
                           const ThresholdMeasurement& b)
{
    if (a.feasible != b.feasible) {
        return a.feasible;
    }
    // At a fixed offered load the engine drains every query, so QPS
    // across thresholds agrees to rounding; treat near-equal rates as
    // a tie and fall through to the tail.
    const double scale = std::max(a.qps, b.qps);
    if (std::abs(a.qps - b.qps) > 1e-9 * std::max(1.0, scale)) {
        return a.qps > b.qps;
    }
    return a.p99 < b.p99;
}

HillClimbResult
hillClimbThreshold(const HillClimbConfig& cfg, const EpochFn& epoch)
{
    validate(cfg);
    HillClimbResult result;
    Measurer measure(cfg, epoch, &result);

    const size_t n = cfg.thresholdGrid.size();
    size_t cur = std::min(cfg.startIndex, n - 1);
    measure.at(cur);
    while (measure.budgetLeft()) {
        // Evaluate the unmeasured neighbors and step to the best of
        // {left, cur, right}; a step that lands back on cur means a
        // local optimum under the SLA-aware objective.
        size_t best = cur;
        const size_t neighbors[2] = {cur > 0 ? cur - 1 : cur,
                                     cur + 1 < n ? cur + 1 : cur};
        for (size_t j : neighbors) {
            if (j == cur) {
                continue;
            }
            if (!measure.measured(j) && !measure.budgetLeft()) {
                continue;  // budget exhausted mid-neighborhood
            }
            if (thresholdMeasurementBetter(measure.at(j),
                                           measure.at(best))) {
                best = j;
            }
        }
        if (best == cur) {
            break;
        }
        cur = best;
    }
    finalize(&result);
    return result;
}

HillClimbResult
exhaustiveThreshold(const HillClimbConfig& cfg, const EpochFn& epoch)
{
    validate(cfg);
    HillClimbResult result;
    Measurer measure(cfg, epoch, &result);
    for (size_t i = 0; i < cfg.thresholdGrid.size(); ++i) {
        measure.at(i);
    }
    finalize(&result);
    return result;
}

}  // namespace recstack
