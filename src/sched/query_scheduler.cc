#include "sched/query_scheduler.h"

#include <algorithm>

namespace recstack {

double
extrapolateLatencyAboveGrid(int64_t b0, double s0, int64_t b1, double s1,
                            int64_t batch)
{
    const double slope = (s1 - s0) / static_cast<double>(b1 - b0);
    const double linear = s1 + slope * static_cast<double>(batch - b1);
    // Floor: the last knot's per-sample cost scaled to this batch. A
    // healthy grid (latency sub-linear in batch, so the marginal slope
    // stays below the average s1/b1) extrapolates above the floor and
    // is returned unchanged; a noisy segment with s1 < s0 would cross
    // zero at batch = b1 + s1/|slope| and goes negative beyond it.
    const double floor_seconds =
        s1 * static_cast<double>(batch) / static_cast<double>(b1);
    return std::max(linear, floor_seconds);
}

QueryScheduler::QueryScheduler(SweepCache* sweep,
                               std::vector<int64_t> batch_grid)
    : sweep_(sweep), batchGrid_(std::move(batch_grid))
{
    RECSTACK_CHECK(sweep_ != nullptr, "scheduler needs a sweep cache");
    if (batchGrid_.empty()) {
        batchGrid_ = paperBatchSizes();
    }
    RECSTACK_CHECK(std::is_sorted(batchGrid_.begin(), batchGrid_.end()),
                   "batch grid must be ascending");
}

double
QueryScheduler::latency(ModelId model, size_t platform_idx, int64_t batch)
{
    RECSTACK_CHECK(batch > 0, "batch must be positive");
    const int64_t lo_batch = batchGrid_.front();
    const int64_t hi_batch = batchGrid_.back();
    if (batch <= lo_batch) {
        return sweep_->get(model, platform_idx, lo_batch).seconds;
    }
    if (batch >= hi_batch) {
        const double s1 =
            sweep_->get(model, platform_idx, hi_batch).seconds;
        // Anchor the slope on the last knot strictly below hi_batch;
        // a 1-point (or degenerate all-equal) grid has no segment to
        // extrapolate from, so fall back to flat extrapolation.
        size_t anchor = batchGrid_.size() - 1;
        while (anchor > 0 && batchGrid_[anchor - 1] == hi_batch) {
            --anchor;
        }
        if (anchor == 0) {
            return s1;
        }
        const int64_t b0 = batchGrid_[anchor - 1];
        const double s0 = sweep_->get(model, platform_idx, b0).seconds;
        return extrapolateLatencyAboveGrid(b0, s0, hi_batch, s1, batch);
    }
    const auto it = std::lower_bound(batchGrid_.begin(), batchGrid_.end(),
                                     batch);
    const int64_t b1 = *it;
    if (b1 == batch) {
        return sweep_->get(model, platform_idx, batch).seconds;
    }
    const int64_t b0 = *(it - 1);
    const double s0 = sweep_->get(model, platform_idx, b0).seconds;
    const double s1 = sweep_->get(model, platform_idx, b1).seconds;
    const double t =
        static_cast<double>(batch - b0) / static_cast<double>(b1 - b0);
    return s0 + t * (s1 - s0);
}

ScheduleDecision
QueryScheduler::route(ModelId model, int64_t batch, double sla_seconds)
{
    ScheduleDecision best;
    best.batch = batch;
    best.expectedLatency = -1.0;
    for (size_t p = 0; p < sweep_->platforms().size(); ++p) {
        const double lat = latency(model, p, batch);
        if (best.expectedLatency < 0.0 || lat < best.expectedLatency) {
            best.platformIdx = p;
            best.expectedLatency = lat;
        }
    }
    best.meetsSla = best.expectedLatency <= sla_seconds;
    return best;
}

int64_t
QueryScheduler::maxBatchUnderSla(ModelId model, size_t platform_idx,
                                 double sla_seconds)
{
    int64_t best = 0;
    for (int64_t batch : batchGrid_) {
        if (latency(model, platform_idx, batch) <= sla_seconds) {
            best = batch;
        }
    }
    return best;
}

void
QueryScheduler::setGpuThreshold(ModelId model, int64_t threshold)
{
    RECSTACK_CHECK(threshold > 0, "threshold must be positive");
    gpuThresholds_[model] = threshold;
}

int64_t
QueryScheduler::gpuThreshold(ModelId model) const
{
    const auto it = gpuThresholds_.find(model);
    return it == gpuThresholds_.end() ? kNoGpuThreshold : it->second;
}

void
QueryScheduler::setPimThreshold(ModelId model, int64_t threshold)
{
    RECSTACK_CHECK(threshold > 0, "threshold must be positive");
    pimThresholds_[model] = threshold;
}

int64_t
QueryScheduler::pimThreshold(ModelId model) const
{
    const auto it = pimThresholds_.find(model);
    return it == pimThresholds_.end() ? kNoPimThreshold : it->second;
}

ThroughputPoint
QueryScheduler::bestThroughputUnderSla(ModelId model, double sla_seconds)
{
    ThroughputPoint best;
    for (size_t p = 0; p < sweep_->platforms().size(); ++p) {
        for (int64_t batch : batchGrid_) {
            const double lat = latency(model, p, batch);
            if (lat > sla_seconds) {
                continue;
            }
            const double qps = static_cast<double>(batch) / lat;
            if (!best.feasible || qps > best.samplesPerSecond) {
                best.feasible = true;
                best.platformIdx = p;
                best.batch = batch;
                best.latencySeconds = lat;
                best.samplesPerSecond = qps;
            }
        }
    }
    return best;
}

}  // namespace recstack
