#ifndef RECSTACK_SCHED_HILL_CLIMB_H_
#define RECSTACK_SCHED_HILL_CLIMB_H_

/**
 * @file
 * Online hill-climbing tuner for the CPU/GPU batch-size threshold
 * (DeepRecSys's SLA-aware scheduler loop; see docs/scheduling.md).
 *
 * DeepRecSys tunes the per-model split between CPU inference engines
 * and the accelerator lane *online*: run an epoch at a candidate
 * threshold, observe the tail latency the serving stack actually
 * produced, and walk the threshold toward the best feasible point.
 * This module reproduces that loop against this repo's observability
 * surface instead of a bespoke side channel:
 *
 *  - the caller supplies an EpochFn that serves one epoch of traffic
 *    at a given threshold (in practice: set
 *    QueryScheduler::setGpuThreshold and run the ServingEngine with
 *    EngineConfig::heterogeneous);
 *  - the tuner resets the named latency histogram in
 *    obs::MetricsRegistry::global() before the epoch and reads the
 *    achieved p99 and served-query count back from its snapshot
 *    afterwards — the feedback path is the live metrics pipe, not a
 *    return value, so any engine (or future backend) that records
 *    into "serve.query_latency_seconds" can be tuned unmodified;
 *  - candidates live on a fixed ascending grid (usually the
 *    characterization batch grid): the climber measures the current
 *    point and its neighbors and moves while a neighbor is better,
 *    so it converges to a local optimum in O(grid) epochs instead of
 *    sweeping every point.
 *
 * "Better" is SLA-aware and total: a feasible point (p99 <= SLA)
 * always beats an infeasible one; among feasible points higher
 * served QPS wins; equal-QPS ties fall to lower p99 (at a fixed
 * offered load the engine drains everything, so QPS ties are the
 * common case and the climber effectively minimizes the tail).
 * exhaustiveThreshold() measures every grid point with the same
 * objective — benches use it as the oracle the climber must land
 * within one grid step of (PAPER-CHECK in bench_ext_hetero).
 *
 * The tuner is deliberately generic over the epoch body: sched sits
 * below serve in the library stack, so it cannot (and does not)
 * depend on ServingEngine.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace recstack {

/** One measured epoch at a candidate threshold. */
struct ThresholdMeasurement {
    int64_t threshold = 0;
    /// Served queries / epochSeconds, from the histogram's count.
    double qps = 0.0;
    /// Achieved tail from the histogram snapshot (within one bucket
    /// width of the exact order statistic).
    double p99 = 0.0;
    /// p99 <= slaSeconds.
    bool feasible = false;
};

/** Knobs of one tuning run. */
struct HillClimbConfig {
    /// Tail-latency target the scheduler must hold.
    double slaSeconds = 0.05;
    /// Ascending candidate thresholds (strictly increasing, all >= 1).
    /// Usually the characterization batch grid plus a sentinel like
    /// QueryScheduler::kNoGpuThreshold as "route nothing".
    std::vector<int64_t> thresholdGrid;
    /// Grid index the climb starts from (clamped to the grid).
    size_t startIndex = 0;
    /// Epoch budget: at most this many EpochFn invocations.
    int maxEpochs = 32;
    /// Virtual duration of one epoch's arrival stream; the QPS
    /// denominator (served queries / epochSeconds).
    double epochSeconds = 1.0;
    /// Latency histogram the tuner resets / reads, by registry name.
    std::string histogramName = "serve.query_latency_seconds";
};

/** What a tuning run decided (history in evaluation order). */
struct HillClimbResult {
    int64_t bestThreshold = 0;
    ThresholdMeasurement best;
    /// True when at least one measured point met the SLA; when false,
    /// best is the least-bad infeasible point.
    bool anyFeasible = false;
    /// Epochs actually spent (== history.size()).
    int epochs = 0;
    std::vector<ThresholdMeasurement> history;
};

/**
 * Serve one epoch at the given threshold. The tuner resets the
 * histogram immediately before calling this and snapshots it
 * immediately after, so the body must record every served query's
 * latency into cfg.histogramName (the ServingEngine already does).
 */
using EpochFn = std::function<void(int64_t threshold)>;

/** SLA-aware objective: does @c a beat @c b? (see file comment) */
bool thresholdMeasurementBetter(const ThresholdMeasurement& a,
                                const ThresholdMeasurement& b);

/** Neighborhood hill climb over cfg.thresholdGrid (see file). */
HillClimbResult hillClimbThreshold(const HillClimbConfig& cfg,
                                   const EpochFn& epoch);

/** Measure every grid point; the oracle the climber is judged by. */
HillClimbResult exhaustiveThreshold(const HillClimbConfig& cfg,
                                    const EpochFn& epoch);

}  // namespace recstack

#endif  // RECSTACK_SCHED_HILL_CLIMB_H_
