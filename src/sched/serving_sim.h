#ifndef RECSTACK_SCHED_SERVING_SIM_H_
#define RECSTACK_SCHED_SERVING_SIM_H_

/**
 * @file
 * Discrete-event serving simulator (beyond-paper extension).
 *
 * The paper characterizes isolated inferences; production serving
 * (DeepRecSys) batches a Poisson query stream under a tail-latency
 * SLA. This simulator runs one inference engine with a dynamic
 * batcher in front of it: queries queue up, the server launches a
 * batch when it is full or the oldest query has waited out the
 * batching window, and the batch's service time comes from the
 * characterization grid. The output is the latency distribution the
 * datacenter actually cares about (p50/p95/p99), which turns Fig. 5's
 * "optimal platform" cells into operating curves.
 */

#include <cstdint>

#include "sched/query_scheduler.h"

namespace recstack {

/** One serving experiment. */
struct ServingConfig {
    double arrivalQps = 1000.0;    ///< mean sample arrival rate
    int64_t maxBatch = 256;        ///< dynamic-batching cap
    double maxWaitSeconds = 1e-3;  ///< batching window
    double simSeconds = 2.0;       ///< simulated duration
    uint64_t seed = 42;
};

/** Measured behaviour of a simulated or threaded serving engine. */
struct ServingStats {
    uint64_t samplesArrived = 0;
    uint64_t samplesServed = 0;
    /// Samples still queued when the simulation's drain cutoff fired;
    /// they arrived but never got latency/throughput credit. Nonzero
    /// only for over-saturated configurations.
    uint64_t droppedSamples = 0;
    uint64_t batchesServed = 0;
    double meanLatency = 0.0;   ///< arrival -> completion, seconds
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    double meanBatch = 0.0;
    double utilization = 0.0;   ///< fraction of time the engine is busy
    /// Demanded service time over the arrival window (busy seconds /
    /// simSeconds), *unclamped*: values above 1 expose over-saturated
    /// configurations that the clamped utilization hides.
    double offeredLoad = 0.0;
    double throughputQps = 0.0; ///< served samples / simulated time
};

/**
 * Reduce completed-sample latencies into ServingStats mean/tail
 * fields (sorts @c latencies in place; leaves the stats untouched
 * when empty). Shared by the analytical simulator, the threaded
 * serving node, and the fleet simulator so every layer's percentile
 * convention is percentileOfSorted's.
 */
void fillLatencyStats(std::vector<double>& latencies,
                      ServingStats* stats);

/** Single-engine dynamic-batching server. */
class ServingSimulator
{
  public:
    /**
     * @param scheduler  latency oracle (interpolating over the sweep)
     * @param model      served model
     * @param platform_idx platform in the scheduler's sweep
     */
    ServingSimulator(QueryScheduler* scheduler, ModelId model,
                     size_t platform_idx);

    ServingStats simulate(const ServingConfig& config);

  private:
    QueryScheduler* scheduler_;
    ModelId model_;
    size_t platformIdx_;
};

}  // namespace recstack

#endif  // RECSTACK_SCHED_SERVING_SIM_H_
