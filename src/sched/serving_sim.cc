#include "sched/serving_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/stats.h"
#include "workload/batch_generator.h"

namespace recstack {

void
fillLatencyStats(std::vector<double>& latencies, ServingStats* stats)
{
    if (latencies.empty()) {
        return;
    }
    double sum = 0.0;
    for (double lat : latencies) {
        sum += lat;
    }
    stats->meanLatency = sum / static_cast<double>(latencies.size());
    std::sort(latencies.begin(), latencies.end());
    stats->p50Latency = percentileOfSorted(latencies, 0.50);
    stats->p95Latency = percentileOfSorted(latencies, 0.95);
    stats->p99Latency = percentileOfSorted(latencies, 0.99);
}

ServingSimulator::ServingSimulator(QueryScheduler* scheduler,
                                   ModelId model, size_t platform_idx)
    : scheduler_(scheduler), model_(model), platformIdx_(platform_idx)
{
    RECSTACK_CHECK(scheduler_ != nullptr, "simulator needs a scheduler");
}

ServingStats
ServingSimulator::simulate(const ServingConfig& config)
{
    RECSTACK_CHECK(config.arrivalQps > 0.0, "arrival rate must be > 0");
    RECSTACK_CHECK(config.maxBatch > 0, "batch cap must be > 0");
    RECSTACK_CHECK(config.simSeconds > 0.0, "duration must be > 0");

    PoissonProcess arrivals(config.arrivalQps, config.seed);
    ServingStats stats;

    std::deque<double> queue;       // arrival times of waiting samples
    std::vector<double> latencies;  // completed-sample latencies
    double now = 0.0;
    double next_arrival = arrivals.next();
    double busy_until = 0.0;
    double busy_time = 0.0;

    // Event loop: the next event is either an arrival or the point at
    // which the server can launch a batch.
    while (now < config.simSeconds ||
           (!queue.empty() && now < config.simSeconds * 4)) {
        // Admit arrivals up to `now`.
        while (next_arrival <= now &&
               next_arrival < config.simSeconds) {
            queue.push_back(next_arrival);
            ++stats.samplesArrived;
            next_arrival = arrivals.next();
        }

        const bool server_free = now >= busy_until;
        if (server_free && !queue.empty()) {
            const bool batch_full =
                static_cast<int64_t>(queue.size()) >= config.maxBatch;
            const bool window_expired =
                now - queue.front() >= config.maxWaitSeconds;
            const bool draining = next_arrival >= config.simSeconds;
            if (batch_full || window_expired || draining) {
                const int64_t batch = std::min<int64_t>(
                    config.maxBatch,
                    static_cast<int64_t>(queue.size()));
                const double service = scheduler_->latency(
                    model_, platformIdx_, batch);
                const double done = now + service;
                for (int64_t i = 0; i < batch; ++i) {
                    latencies.push_back(done - queue.front());
                    queue.pop_front();
                }
                ++stats.batchesServed;
                stats.samplesServed += static_cast<uint64_t>(batch);
                stats.meanBatch += static_cast<double>(batch);
                busy_until = done;
                busy_time += service;
                now = done;
                continue;
            }
        }

        // Advance to the next event: arrival, server-free point, or
        // batching-window expiry.
        double next_event = next_arrival;
        if (!server_free) {
            next_event = std::min(next_event, busy_until);
        } else if (!queue.empty()) {
            next_event = std::min(
                next_event, queue.front() + config.maxWaitSeconds);
        }
        if (next_event <= now) {
            next_event = now + 1e-9;  // guard against stalls
        }
        if (queue.empty() && next_arrival >= config.simSeconds) {
            break;  // drained
        }
        now = next_event;
    }

    // The drain loop above hard-stops at 4x the arrival window; under
    // severe over-saturation samples can still be queued then. They
    // were counted in samplesArrived but never served — account them
    // explicitly instead of letting them vanish from the stats.
    stats.droppedSamples = static_cast<uint64_t>(queue.size());

    fillLatencyStats(latencies, &stats);
    if (stats.batchesServed > 0) {
        stats.meanBatch /= static_cast<double>(stats.batchesServed);
    }
    const double horizon = std::max(now, config.simSeconds);
    stats.utilization = std::min(1.0, busy_time / horizon);
    stats.offeredLoad = busy_time / config.simSeconds;
    stats.throughputQps =
        static_cast<double>(stats.samplesServed) / horizon;
    return stats;
}

}  // namespace recstack
