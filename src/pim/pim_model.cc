#include "pim/pim_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "store/embedding_store.h"

namespace recstack {

double
PimPartition::imbalance() const
{
    if (rows <= 0 || rowsPerRank.empty()) {
        return 1.0;
    }
    const int64_t max =
        *std::max_element(rowsPerRank.begin(), rowsPerRank.end());
    const double mean = static_cast<double>(rows) /
                        static_cast<double>(rowsPerRank.size());
    return mean > 0.0 ? static_cast<double>(max) / mean : 1.0;
}

PimPartition
pimPartitionRows(int table, int64_t rows, int ranks)
{
    PimPartition p;
    p.rows = rows;
    p.rowsPerRank.assign(static_cast<size_t>(std::max(1, ranks)), 0);
    // The modulo shard map assigns contiguous row runs round-robin,
    // so per-rank counts follow in closed form from the first row's
    // shard — no per-row loop over multi-million-row tables.
    const size_t n = p.rowsPerRank.size();
    if (rows <= 0) {
        return p;
    }
    const size_t first =
        EmbeddingStore::rowShard(table, 0, n);
    for (size_t r = 0; r < n; ++r) {
        // Rows hitting rank r are those with (row + first) % n == r.
        const int64_t offset =
            static_cast<int64_t>((r + n - first) % n);
        p.rowsPerRank[r] =
            offset < rows ? (rows - offset - 1) / static_cast<int64_t>(n) + 1
                          : 0;
    }
    return p;
}

PimModel::PimModel(const PimConfig& cfg) : cfg_(cfg) {}

bool
PimModel::offloadable(const KernelProfile& kp)
{
    return kp.opType == "SparseLengthsSum" ||
           kp.opType == "SparseLengthsWeightedSum" ||
           kp.opType == "SparseLengthsMean";
}

int
PimModel::regionTableId(const std::string& region)
{
    auto it = regionIds_.find(region);
    if (it != regionIds_.end()) {
        return it->second;
    }
    const int id = static_cast<int>(regionIds_.size());
    regionIds_.emplace(region, id);
    return id;
}

double
PimModel::regionImbalance(const std::string& region, int64_t rows)
{
    auto it = imbalanceCache_.find(region);
    if (it != imbalanceCache_.end()) {
        return it->second;
    }
    const double imb =
        pimPartitionRows(regionTableId(region), rows, cfg_.ranks)
            .imbalance();
    imbalanceCache_.emplace(region, imb);
    return imb;
}

namespace {

/** Latency + bandwidth term of one host<->DPU copy; free when empty. */
double
xferSeconds(uint64_t bytes, const PimConfig& cfg)
{
    if (bytes == 0) {
        return 0.0;
    }
    return cfg.xferLatencySec +
           static_cast<double>(bytes) / (cfg.xferGBs * 1e9);
}

}  // namespace

PimOpTime
PimModel::opTime(const KernelProfile& kp)
{
    PimOpTime t;
    t.opType = kp.opType;
    t.opName = kp.opName;

    // Map the profile's streams onto the offload's three byte flows.
    // src/ops/embedding.cc lowers SLS as: sequential reads = indices
    // and lengths (and per-lookup weights for SLWS), random reads =
    // table rows (possibly split into store:cache:/near:/far: regions
    // when a store is attached — all still DPU-resident traffic), one
    // write stream = the pooled output.
    double weightedImbalance = 0.0;
    uint64_t largestRow = 0;
    for (const MemStream& s : kp.streams) {
        if (s.isWrite) {
            t.downloadBytes += s.totalBytes();
        } else if (s.pattern == AccessPattern::kRandom) {
            t.tableBytes += s.totalBytes();
            t.lookups += s.accesses;
            largestRow = std::max(largestRow, s.chunkBytes);
            const int64_t rows =
                s.chunkBytes > 0
                    ? static_cast<int64_t>(s.footprintBytes /
                                           s.chunkBytes)
                    : 0;
            weightedImbalance +=
                static_cast<double>(s.totalBytes()) *
                regionImbalance(s.region, rows);
        } else {
            t.uploadBytes += s.totalBytes();
        }
    }
    const double imbalance =
        t.tableBytes > 0
            ? weightedImbalance / static_cast<double>(t.tableBytes)
            : 1.0;

    // WRAM working-set constraint: each streaming tasklet keeps one
    // row buffer resident, so wide rows cap concurrency below the
    // configured tasklet count; the pipeline only saturates MRAM once
    // ~pipelineFillTasklets are active.
    const uint64_t wramTasklets =
        largestRow > 0
            ? std::max<uint64_t>(1, cfg_.wramBytesPerDpu / largestRow)
            : static_cast<uint64_t>(cfg_.taskletsPerDpu);
    const int activeTasklets = static_cast<int>(std::min<uint64_t>(
        static_cast<uint64_t>(std::max(1, cfg_.taskletsPerDpu)),
        wramTasklets));
    const double taskletFill =
        std::min(1.0, static_cast<double>(activeTasklets) /
                          static_cast<double>(std::max(
                              1, cfg_.pipelineFillTasklets)));

    const double aggregateGBs = static_cast<double>(cfg_.ranks) *
                                cfg_.rankInternalGBs * taskletFill;
    t.dispatchSeconds = cfg_.hostDispatchSec;
    t.uploadSeconds = xferSeconds(t.uploadBytes, cfg_);
    t.dpuSeconds =
        aggregateGBs > 0.0
            ? static_cast<double>(t.tableBytes) * imbalance /
                  (aggregateGBs * 1e9)
            : 0.0;
    t.downloadSeconds = xferSeconds(t.downloadBytes, cfg_);
    t.seconds = t.dispatchSeconds + t.uploadSeconds + t.dpuSeconds +
                t.downloadSeconds;
    return t;
}

PimRunResult
PimModel::simulateOffload(const std::vector<KernelProfile>& kernels)
{
    PimRunResult r;
    for (const KernelProfile& kp : kernels) {
        if (!offloadable(kp)) {
            continue;
        }
        PimOpTime t = opTime(kp);
        r.offloadSeconds += t.seconds;
        r.dispatchSeconds += t.dispatchSeconds;
        r.uploadSeconds += t.uploadSeconds;
        r.dpuSeconds += t.dpuSeconds;
        r.downloadSeconds += t.downloadSeconds;
        r.offloadedOps += 1;
        r.uploadBytes += t.uploadBytes;
        r.tableBytes += t.tableBytes;
        r.downloadBytes += t.downloadBytes;
        r.lookups += t.lookups;
        r.opTimes.push_back(std::move(t));
    }
    return r;
}

double
PimModel::transferBoundSeconds(const KernelProfile& kp) const
{
    uint64_t up = 0;
    uint64_t down = 0;
    for (const MemStream& s : kp.streams) {
        if (s.isWrite) {
            down += s.totalBytes();
        } else if (s.pattern != AccessPattern::kRandom) {
            up += s.totalBytes();
        }
    }
    return cfg_.hostDispatchSec + xferSeconds(up, cfg_) +
           xferSeconds(down, cfg_);
}

void
exportPimStats(const PimRunResult& r)
{
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("pim.offloaded_ops").add(r.offloadedOps);
    reg.counter("pim.offloaded_lookups").add(r.lookups);
    reg.counter("pim.upload_bytes").add(r.uploadBytes);
    reg.counter("pim.download_bytes").add(r.downloadBytes);
    reg.counter("pim.table_bytes").add(r.tableBytes);
    reg.gauge("pim.transfer_fraction").set(r.transferFraction());
    reg.histogram("pim.offload_seconds", 0.0, 0.1, 200)
        .record(r.offloadSeconds);
}

}  // namespace recstack
