#ifndef RECSTACK_PIM_PIM_MODEL_H_
#define RECSTACK_PIM_PIM_MODEL_H_

/**
 * @file
 * Analytical UPMEM-style processing-in-memory model: the third
 * platform next to the CPU microarchitecture simulator (src/uarch/)
 * and the GPU roofline model (src/gpu/).
 *
 * The paper's central finding is that recommendation inference is
 * dominated by irregular, memory-bound SparseLengthsSum traffic —
 * random row gathers whose arithmetic is one add per element. A PIM
 * platform attacks exactly that term: embedding tables are
 * row-partitioned across N DPU ranks (the same modulo shard map the
 * embedding store uses, EmbeddingStore::rowShard, so the Zipf heads
 * of co-stored tables decorrelate across ranks), the pooling executes
 * next to the rows at aggregate internal MRAM bandwidth, and only the
 * int64 indices go up / pooled fp32 vectors come back over the narrow
 * host<->DPU transfer path. Everything else (FC stacks, GRU steps,
 * feature concat, data loading) still runs on the host CPU model —
 * which is why the platform wins on SLS-dominated models (RM1, RM2)
 * and merely adds transfer overhead on FC/GRU-dominated ones (WnD,
 * DIEN).
 *
 * Per offloaded kernel, from its platform-independent KernelProfile:
 *
 *   upload   = xferLatency + indexBytes / xferBW        (0 if no bytes)
 *   dpu      = tableBytes * imbalance /
 *              (ranks * rankBW * taskletFill)
 *   download = xferLatency + outputBytes / xferBW       (0 if no bytes)
 *   total    = hostDispatch + upload + dpu + download
 *
 * where taskletFill = min(1, activeTasklets / pipelineFillTasklets)
 * and activeTasklets = min(taskletsPerDpu, wramBytesPerDpu/rowBytes):
 * the DPU's in-order pipeline needs ~11 resident tasklets to saturate
 * MRAM, and each active tasklet keeps its row buffer in the 64 KB
 * WRAM scratchpad (the working-set constraint). imbalance is the
 * slowest rank's share of the partitioned rows (max/mean over the
 * shard map). Throughput is therefore monotone in ranks and tasklets
 * and saturates at the host<->DPU transfer bound — the invariants
 * tests/test_pim.cc pins.
 *
 * The stream mapping is direct: an SLS profile's sequential read
 * streams are the index/length uploads, its random streams are the
 * in-memory table gathers, and its write stream is the pooled-result
 * download (src/ops/embedding.cc lowers them exactly so).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "platform/platform.h"
#include "profile/kernel_profile.h"

namespace recstack {

/**
 * Row partition of one table across the DPU ranks, by the store's
 * shard map. Exposed (rather than just its imbalance) so the
 * covers-every-row-exactly-once invariant is testable.
 */
struct PimPartition {
    int64_t rows = 0;
    std::vector<int64_t> rowsPerRank;

    /** Slowest rank's load relative to perfect balance (>= 1). */
    double imbalance() const;
};

/** Partition @c rows of table @c table across @c ranks ranks. */
PimPartition pimPartitionRows(int table, int64_t rows, int ranks);

/** Timing detail of one offloaded kernel. */
struct PimOpTime {
    std::string opType;
    std::string opName;
    double dispatchSeconds = 0.0;
    double uploadSeconds = 0.0;
    double dpuSeconds = 0.0;
    double downloadSeconds = 0.0;
    double seconds = 0.0;  ///< sum of the four phases

    uint64_t uploadBytes = 0;    ///< indices + lengths (+ weights)
    uint64_t tableBytes = 0;     ///< rows gathered inside the ranks
    uint64_t downloadBytes = 0;  ///< pooled outputs
    uint64_t lookups = 0;        ///< table-row touches
};

/** One net's offloaded share on the PIM platform. */
struct PimRunResult {
    double offloadSeconds = 0.0;  ///< sum over offloaded kernels
    double dispatchSeconds = 0.0;
    double uploadSeconds = 0.0;
    double dpuSeconds = 0.0;
    double downloadSeconds = 0.0;

    uint64_t offloadedOps = 0;
    uint64_t uploadBytes = 0;
    uint64_t tableBytes = 0;
    uint64_t downloadBytes = 0;
    uint64_t lookups = 0;

    std::vector<PimOpTime> opTimes;

    /** Host<->DPU transfer share of the offloaded time. */
    double transferFraction() const
    {
        return offloadSeconds > 0.0
                   ? (uploadSeconds + downloadSeconds) / offloadSeconds
                   : 0.0;
    }
};

/** Analytical DPU-rank cost model. */
class PimModel
{
  public:
    explicit PimModel(const PimConfig& cfg);

    /**
     * True when the kernel's operator family executes on the DPUs:
     * the embedding pooling ops (SparseLengthsSum / -WeightedSum /
     * -Mean). Gathers without pooling return full rows — the
     * transfer path would carry the same bytes DRAM would have, so
     * they stay on the host.
     */
    static bool offloadable(const KernelProfile& kp);

    /** Time one offloadable kernel. */
    PimOpTime opTime(const KernelProfile& kp);

    /** Time a net's offloadable kernels (others are skipped). */
    PimRunResult simulateOffload(
        const std::vector<KernelProfile>& kernels);

    /**
     * The floor an infinite-rank configuration converges to for this
     * kernel: dispatch plus both transfers, with zero DPU time. The
     * saturation PAPER-CHECK measures against this bound.
     */
    double transferBoundSeconds(const KernelProfile& kp) const;

    const PimConfig& config() const { return cfg_; }

  private:
    /// Stable table id per stream region (encounter order), so the
    /// shard map decorrelates co-stored tables exactly like the
    /// embedding store does.
    int regionTableId(const std::string& region);
    double regionImbalance(const std::string& region, int64_t rows);

    PimConfig cfg_;
    std::map<std::string, int> regionIds_;
    std::map<std::string, double> imbalanceCache_;
};

/** Fold one PIM run into the pim.* obs counters/histograms. */
void exportPimStats(const PimRunResult& r);

}  // namespace recstack

#endif  // RECSTACK_PIM_PIM_MODEL_H_
