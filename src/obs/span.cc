#include "obs/span.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace recstack {
namespace obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// Dynamic initializer: honor RECSTACK_TRACE_RUNTIME before main().
const bool g_env_init = [] {
    const char* v = std::getenv("RECSTACK_TRACE_RUNTIME");
    if (v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0) {
        detail::g_trace_enabled.store(true, std::memory_order_relaxed);
        return true;
    }
    return false;
}();

}  // namespace

void
setTraceEnabled(bool enabled)
{
    detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

bool
traceEnabledByEnv()
{
    return g_env_init;
}

uint64_t
nowNanos()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point anchor = clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             anchor)
            .count());
}

uint32_t
currentThreadId()
{
    static std::atomic<uint32_t> next{1};
    thread_local const uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

TraceBuffer::TraceBuffer(size_t capacity)
    : slots_(capacity ? capacity : 1)
{
}

TraceBuffer&
TraceBuffer::global()
{
    // Leaked for the same reason as MetricsRegistry::global():
    // detached pool workers may record during static destruction.
    static TraceBuffer* buffer = new TraceBuffer();
    return *buffer;
}

bool
TraceBuffer::record(const SpanRecord& rec)
{
    const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= slots_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    Slot& slot = slots_[idx];
    slot.rec = rec;
    slot.ready.store(true, std::memory_order_release);
    return true;
}

TraceSnapshot
TraceBuffer::snapshot() const
{
    TraceSnapshot snap;
    snap.spans.reserve(size());
    for (const Slot& slot : slots_) {
        if (slot.ready.load(std::memory_order_acquire)) {
            snap.spans.push_back(slot.rec);
        }
    }
    snap.dropped = dropped_.load(std::memory_order_relaxed);
    return snap;
}

void
TraceBuffer::clear()
{
    const uint64_t used = next_.load(std::memory_order_relaxed);
    const size_t upto = used < slots_.size()
                            ? static_cast<size_t>(used)
                            : slots_.size();
    for (size_t i = 0; i < upto; ++i) {
        slots_[i].ready.store(false, std::memory_order_relaxed);
        slots_[i].rec = SpanRecord{};
    }
    next_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
}

size_t
TraceBuffer::size() const
{
    const uint64_t used = next_.load(std::memory_order_relaxed);
    return used < slots_.size() ? static_cast<size_t>(used)
                                : slots_.size();
}

ScopedSpan::ScopedSpan(const char* name,
                       std::initializer_list<SpanArg> args)
    : active_(traceEnabled()),
      prefix_(nullptr),
      name_(name)
{
    if (active_) {
        init(args);
    }
}

ScopedSpan::ScopedSpan(const char* prefix, const char* name,
                       std::initializer_list<SpanArg> args)
    : active_(traceEnabled()),
      prefix_(prefix),
      name_(name)
{
    if (active_) {
        init(args);
    }
}

void
ScopedSpan::init(std::initializer_list<SpanArg> args)
{
    startNs_ = nowNanos();
    for (const SpanArg& a : args) {
        arg(a.key, a.value);
    }
}

void
ScopedSpan::arg(const char* key, int64_t value)
{
    if (!active_ || numArgs_ >= kMaxSpanArgs) {
        return;
    }
    SpanRecord::Arg& slot = args_[numArgs_++];
    std::snprintf(slot.key, sizeof(slot.key), "%s", key);
    slot.value = value;
}

ScopedSpan::~ScopedSpan()
{
    if (!active_) {
        return;
    }
    SpanRecord rec;
    if (prefix_ != nullptr) {
        std::snprintf(rec.name, sizeof(rec.name), "%s.%s", prefix_, name_);
    } else {
        std::snprintf(rec.name, sizeof(rec.name), "%s", name_);
    }
    rec.startNs = startNs_;
    rec.endNs = nowNanos();
    rec.tid = currentThreadId();
    rec.numArgs = numArgs_;
    for (uint32_t i = 0; i < numArgs_; ++i) {
        rec.args[i] = args_[i];
    }
    TraceBuffer::global().record(rec);
}

}  // namespace obs
}  // namespace recstack
