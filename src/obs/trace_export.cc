#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace recstack {
namespace obs {
namespace {

/// Escape a NUL-terminated string for a JSON string literal.
std::string
jsonEscape(const char* s)
{
    std::string out;
    for (; *s != '\0'; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// Category = the span-name prefix before the first '.', so
/// "op.FC" groups under "op" and "queue.acquire" under "queue".
std::string
categoryOf(const char* name)
{
    const char* dot = std::strchr(name, '.');
    if (dot == nullptr) {
        return name;
    }
    return std::string(name, static_cast<size_t>(dot - name));
}

}  // namespace

std::string
renderChromeTrace(const TraceSnapshot& snap)
{
    std::string out = "{\"traceEvents\":[";
    char buf[256];
    bool first = true;
    for (const SpanRecord& rec : snap.spans) {
        out += first ? "\n" : ",\n";
        first = false;
        // ts/dur are microseconds (the trace-event spec's unit);
        // keep sub-microsecond precision with three decimals.
        const double tsUs = static_cast<double>(rec.startNs) / 1e3;
        const double durUs =
            static_cast<double>(rec.endNs - rec.startNs) / 1e3;
        out += "{\"name\":\"" + jsonEscape(rec.name) + "\",\"cat\":\"" +
               categoryOf(rec.name) + "\",\"ph\":\"X\"";
        std::snprintf(buf, sizeof(buf),
                      ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                      tsUs, durUs, rec.tid);
        out += buf;
        out += ",\"args\":{";
        for (uint32_t i = 0; i < rec.numArgs && i < kMaxSpanArgs; ++i) {
            if (i > 0) {
                out += ",";
            }
            std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64,
                          jsonEscape(rec.args[i].key).c_str(),
                          rec.args[i].value);
            out += buf;
        }
        out += "}}";
    }
    std::snprintf(buf, sizeof(buf),
                  "\n],\"displayTimeUnit\":\"ms\","
                  "\"recstack\":{\"dropped\":%" PRIu64 "}}\n",
                  snap.dropped);
    out += buf;
    return out;
}

bool
writeChromeTrace(const std::string& path, const TraceSnapshot& snap,
                 std::string* error)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr) {
            *error = "cannot open " + path + " for writing";
        }
        return false;
    }
    const std::string doc = renderChromeTrace(snap);
    const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    const bool ok = written == doc.size() && std::fclose(f) == 0;
    if (!ok && error != nullptr) {
        *error = "short write to " + path;
    }
    return ok;
}

}  // namespace obs
}  // namespace recstack
