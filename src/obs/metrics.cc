#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace recstack {
namespace obs {
namespace {

/// obs sits below recstack_common, so it cannot use RECSTACK_CHECK;
/// this is the same panic contract without the link dependency.
void
obsCheckFailed(const char* what)
{
    std::fprintf(stderr, "[obs] check failed: %s\n", what);
    std::abort();
}

#define RECSTACK_OBS_CHECK(cond)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            obsCheckFailed(#cond);                                          \
        }                                                                   \
    } while (0)

/// Stripe index of the calling thread: a cheap hash of a stable
/// per-thread token so each thread sticks to one stripe.
size_t
threadStripe()
{
    static std::atomic<uint32_t> next{0};
    thread_local const uint32_t token =
        next.fetch_add(1, std::memory_order_relaxed);
    return token & (kCounterStripes - 1);
}

/// fetch_add for atomic<double> via CAS (portable pre-C++20-TS).
void
atomicAddDouble(std::atomic<double>& target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

/** Minimal JSON string escaping for metric names. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

}  // namespace

void
Counter::add(uint64_t delta)
{
    stripes_[threadStripe()].v.fetch_add(delta,
                                         std::memory_order_relaxed);
}

uint64_t
Counter::value() const
{
    uint64_t sum = 0;
    for (const Stripe& s : stripes_) {
        sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
}

void
Counter::reset()
{
    for (Stripe& s : stripes_) {
        s.v.store(0, std::memory_order_relaxed);
    }
}

double
HistogramSnapshot::percentile(double p) const
{
    if (total == 0 || counts.empty()) {
        return 0.0;
    }
    if (p < 0.0) {
        p = 0.0;
    }
    if (p > 1.0) {
        p = 1.0;
    }
    // Rank in [0, total-1], matching percentileOfSorted's convention
    // of interpolating over order statistics.
    const double rank = p * static_cast<double>(total - 1);
    const double width = bucketWidth();
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) {
            continue;
        }
        const uint64_t lo_rank = seen;
        seen += counts[i];
        if (rank < static_cast<double>(seen)) {
            // Spread the bucket's samples evenly across its width.
            const double within =
                (rank - static_cast<double>(lo_rank) + 0.5) /
                static_cast<double>(counts[i]);
            return lo + (static_cast<double>(i) + within) * width;
        }
    }
    return hi;
}

void
HistogramSnapshot::merge(const HistogramSnapshot& other)
{
    RECSTACK_OBS_CHECK(other.lo == lo && other.hi == hi);
    RECSTACK_OBS_CHECK(other.counts.size() == counts.size());
    for (size_t i = 0; i < counts.size(); ++i) {
        counts[i] += other.counts[i];
    }
    total += other.total;
    sum += other.sum;
}

LatencyHistogram::LatencyHistogram(double lo, double hi, size_t buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets ? buckets : 1)),
      counts_(buckets)
{
    RECSTACK_OBS_CHECK(buckets > 0);
    RECSTACK_OBS_CHECK(hi > lo);
}

void
LatencyHistogram::record(double x)
{
    int64_t idx = static_cast<int64_t>((x - lo_) / width_);
    if (idx < 0) {
        idx = 0;
    }
    const int64_t last = static_cast<int64_t>(counts_.size()) - 1;
    if (idx > last) {
        idx = last;
    }
    counts_[static_cast<size_t>(idx)].fetch_add(
        1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sum_, x);
}

void
LatencyHistogram::merge(const HistogramSnapshot& other)
{
    RECSTACK_OBS_CHECK(other.lo == lo_ && other.hi == hi_);
    RECSTACK_OBS_CHECK(other.counts.size() == counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (other.counts[i] != 0) {
            counts_[i].fetch_add(other.counts[i],
                                 std::memory_order_relaxed);
        }
    }
    total_.fetch_add(other.total, std::memory_order_relaxed);
    atomicAddDouble(sum_, other.sum);
}

HistogramSnapshot
LatencyHistogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.lo = lo_;
    snap.hi = hi_;
    snap.counts.resize(counts_.size());
    for (size_t i = 0; i < counts_.size(); ++i) {
        snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    }
    snap.total = total_.load(std::memory_order_relaxed);
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
}

void
LatencyHistogram::reset()
{
    for (auto& c : counts_) {
        c.store(0, std::memory_order_relaxed);
    }
    total_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::string
MetricsSnapshot::renderText() const
{
    std::string out;
    char line[256];
    for (const auto& [name, v] : counters) {
        std::snprintf(line, sizeof(line), "counter  %-40s %" PRIu64 "\n",
                      name.c_str(), v);
        out += line;
    }
    for (const auto& [name, v] : gauges) {
        std::snprintf(line, sizeof(line), "gauge    %-40s %.6g\n",
                      name.c_str(), v);
        out += line;
    }
    for (const auto& [name, h] : histograms) {
        std::snprintf(line, sizeof(line),
                      "hist     %-40s count=%" PRIu64
                      " mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n",
                      name.c_str(), h.total, h.mean(), h.percentile(0.50),
                      h.percentile(0.95), h.percentile(0.99));
        out += line;
    }
    return out;
}

std::string
MetricsSnapshot::renderJson() const
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : counters) {
        out += first ? "\n" : ",\n";
        out += "    \"" + jsonEscape(name) +
               "\": " + std::to_string(v);
        first = false;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto& [name, v] : gauges) {
        out += first ? "\n" : ",\n";
        out += "    \"" + jsonEscape(name) + "\": " + fmtDouble(v);
        first = false;
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms) {
        out += first ? "\n" : ",\n";
        out += "    \"" + jsonEscape(name) + "\": {\"count\": " +
               std::to_string(h.total) + ", \"mean\": " +
               fmtDouble(h.mean()) + ", \"p50\": " +
               fmtDouble(h.percentile(0.50)) + ", \"p95\": " +
               fmtDouble(h.percentile(0.95)) + ", \"p99\": " +
               fmtDouble(h.percentile(0.99)) + "}";
        first = false;
    }
    out += "\n  }\n}\n";
    return out;
}

MetricsRegistry&
MetricsRegistry::global()
{
    // Intentionally leaked: instrumentation handles (function-local
    // statics all over the runtime) must outlive static destruction.
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = gauges_[name];
    if (slot == nullptr) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

LatencyHistogram&
MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                           size_t buckets)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (slot == nullptr) {
        slot = std::make_unique<LatencyHistogram>(lo, hi, buckets);
    }
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    for (const auto& [name, c] : counters_) {
        snap.counters[name] = c->value();
    }
    for (const auto& [name, g] : gauges_) {
        snap.gauges[name] = g->value();
    }
    for (const auto& [name, h] : histograms_) {
        snap.histograms[name] = h->snapshot();
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) {
        c->reset();
    }
    for (auto& [name, g] : gauges_) {
        g->reset();
    }
    for (auto& [name, h] : histograms_) {
        h->reset();
    }
}

}  // namespace obs
}  // namespace recstack
