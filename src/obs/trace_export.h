#ifndef RECSTACK_OBS_TRACE_EXPORT_H_
#define RECSTACK_OBS_TRACE_EXPORT_H_

/**
 * @file
 * Chrome trace-event JSON export for TraceBuffer snapshots.
 *
 * Emits the `traceEvents` object format understood by
 * chrome://tracing and https://ui.perfetto.dev: one complete event
 * (ph "X") per SpanRecord with microsecond `ts`/`dur`, `pid` fixed at
 * 1, `tid` from the span's per-process thread id, `cat` derived from
 * the span-name prefix before the first '.', and the span's key/value
 * args under `args`. docs/observability.md walks through opening the
 * file in Perfetto.
 */

#include <string>

#include "obs/span.h"

namespace recstack {
namespace obs {

/** Render a snapshot as a Chrome trace-event JSON document. */
std::string renderChromeTrace(const TraceSnapshot& snap);

/**
 * Write renderChromeTrace(snap) to @c path. Returns false (filling
 * @c error when non-null) if the file cannot be written.
 */
bool writeChromeTrace(const std::string& path, const TraceSnapshot& snap,
                      std::string* error = nullptr);

}  // namespace obs
}  // namespace recstack

#endif  // RECSTACK_OBS_TRACE_EXPORT_H_
