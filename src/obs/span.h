#ifndef RECSTACK_OBS_SPAN_H_
#define RECSTACK_OBS_SPAN_H_

/**
 * @file
 * Scoped runtime spans feeding a bounded in-memory trace buffer.
 *
 * A span is one timed interval on one thread — a batch in service, an
 * operator kernel, a parallelFor chunk, a store lookup — recorded as
 * a fixed-size POD (no heap) with:
 *
 *  - a dotted name ("executor.run", "op.FC", "queue.acquire"); the
 *    prefix before the first '.' becomes the Chrome trace category,
 *  - start/end nanosecond timestamps from one process-wide monotonic
 *    clock (std::chrono::steady_clock, anchored at first use),
 *  - a small per-process thread id, and
 *  - up to kMaxSpanArgs integer key/value args.
 *
 * Tracing is DISABLED by default and the disabled path is the
 * contract: RECSTACK_SPAN compiles to constructing a ScopedSpan whose
 * constructor does one relaxed atomic load and returns — no clock
 * read, no ring write, no allocation (tests/test_obs.cc locks the
 * no-ring-write half down; the object itself lives on the stack).
 * Enable with the RECSTACK_TRACE_RUNTIME=1 environment variable, via
 * setTraceEnabled(true), or per serving run via
 * EngineConfig::captureTrace.
 *
 * Completed spans land in TraceBuffer: a preallocated bounded buffer
 * with a lock-free claim (one fetch_add). When full, new spans are
 * counted in dropped() and discarded — the buffer keeps the *oldest*
 * spans, which for a serving run means the ramp-up and steady state
 * rather than a sliding tail, and makes every retained record stable
 * for the exporter. snapshot() returns only fully-committed records
 * (per-slot release/acquire flag), so it is safe to export while
 * detached pool threads are still recording.
 *
 * Export with obs/trace_export.h (chrome://tracing / Perfetto).
 * Dependency-free (standard library only): recstack_common links it.
 */

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace recstack {
namespace obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/** Is span recording on? One relaxed load — the hot-path gate. */
inline bool
traceEnabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/** Turn span recording on/off at runtime. */
void setTraceEnabled(bool enabled);

/** True when RECSTACK_TRACE_RUNTIME is set to a non-zero value. */
bool traceEnabledByEnv();

constexpr size_t kSpanNameChars = 64;
constexpr size_t kSpanArgKeyChars = 24;
constexpr size_t kMaxSpanArgs = 4;
constexpr size_t kDefaultTraceCapacity = 1u << 16;

/** Key/value argument attached to a span (integer payloads only). */
struct SpanArg {
    const char* key;
    int64_t value;
};

/** One completed span, fixed-size and self-contained. */
struct SpanRecord {
    char name[kSpanNameChars] = {0};
    uint64_t startNs = 0;
    uint64_t endNs = 0;
    uint32_t tid = 0;
    uint32_t numArgs = 0;
    struct Arg {
        char key[kSpanArgKeyChars];
        int64_t value;
    } args[kMaxSpanArgs] = {};
};

/** Copy of the buffer contents plus drop accounting. */
struct TraceSnapshot {
    std::vector<SpanRecord> spans;
    uint64_t dropped = 0;
};

/** Bounded lock-free span sink. See file comment for semantics. */
class TraceBuffer
{
  public:
    explicit TraceBuffer(size_t capacity = kDefaultTraceCapacity);
    TraceBuffer(const TraceBuffer&) = delete;
    TraceBuffer& operator=(const TraceBuffer&) = delete;

    /** The process-wide buffer every ScopedSpan records into. */
    static TraceBuffer& global();

    /** Store a record; false (and one dropped() tick) when full. */
    bool record(const SpanRecord& rec);

    /** Copy out every committed record plus the drop count. */
    TraceSnapshot snapshot() const;

    /**
     * Forget all records and zero the drop counter. Must not race
     * with concurrent record() calls (quiesce writers first — the
     * serving engine joins its workers before snapshotting, and the
     * pool's detached workers only record while a parallelFor is in
     * flight).
     */
    void clear();

    /** Committed-or-claimed record count (<= capacity). */
    size_t size() const;
    size_t capacity() const { return slots_.size(); }
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot {
        SpanRecord rec;
        std::atomic<bool> ready{false};
    };
    std::vector<Slot> slots_;
    std::atomic<uint64_t> next_{0};
    std::atomic<uint64_t> dropped_{0};
};

/** Monotonic nanoseconds since the process trace anchor. */
uint64_t nowNanos();

/** Small stable per-thread id (assigned on first use, from 1). */
uint32_t currentThreadId();

/**
 * RAII span. When tracing is disabled at construction this is a
 * no-op shell; when enabled, the destructor stamps the end time and
 * pushes one SpanRecord into TraceBuffer::global().
 *
 * The name pointers (and optional prefix) must stay valid until the
 * destructor runs — string literals and strings owned by live
 * objects (e.g. Operator::type()) both qualify; the text is copied
 * into the fixed-size record only at destruction.
 */
class ScopedSpan
{
  public:
    /** Span named verbatim: RECSTACK_SPAN("queue.acquire"). */
    explicit ScopedSpan(const char* name,
                        std::initializer_list<SpanArg> args = {});

    /**
     * Span named "<prefix>.<name>" without allocating — for dynamic
     * second components like op types: ScopedSpan("op", type).
     */
    ScopedSpan(const char* prefix, const char* name,
               std::initializer_list<SpanArg> args = {});

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** True when this span will be recorded at scope exit. */
    bool active() const { return active_; }

    /** Append an arg discovered mid-scope (ignored when inactive). */
    void arg(const char* key, int64_t value);

  private:
    void init(std::initializer_list<SpanArg> args);

    bool active_;
    const char* prefix_;
    const char* name_;
    uint64_t startNs_ = 0;
    uint32_t numArgs_ = 0;
    SpanRecord::Arg args_[kMaxSpanArgs] = {};
};

#define RECSTACK_OBS_CONCAT_IMPL_(a, b) a##b
#define RECSTACK_OBS_CONCAT_(a, b) RECSTACK_OBS_CONCAT_IMPL_(a, b)

/**
 * Open a scoped span covering the rest of the enclosing block:
 *
 *   RECSTACK_SPAN("executor.run", {{"ops", n}});
 *
 * Zero-cost (one relaxed load) when tracing is disabled.
 */
#define RECSTACK_SPAN(...)                                                  \
    ::recstack::obs::ScopedSpan RECSTACK_OBS_CONCAT_(recstack_span_,        \
                                                     __COUNTER__)(          \
        __VA_ARGS__)

}  // namespace obs
}  // namespace recstack

#endif  // RECSTACK_OBS_SPAN_H_
