#ifndef RECSTACK_OBS_METRICS_H_
#define RECSTACK_OBS_METRICS_H_

/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * fixed-bucket latency histograms with a lock-free update fast path.
 *
 * The runtime (executor, thread pool, batch queue, serving engine,
 * embedding store) bumps metrics on hot paths, so updates must never
 * serialize concurrent workers:
 *
 *  - Counter  — monotonic uint64, striped across cache-line-padded
 *    atomics indexed by a thread-id hash; add() is one relaxed
 *    fetch_add on a stripe that concurrent threads rarely share.
 *  - Gauge    — last-writer-wins double (one relaxed atomic store).
 *  - LatencyHistogram — fixed-width buckets over [lo, hi); record()
 *    is one relaxed fetch_add on the bucket's atomic plus a CAS loop
 *    on the running sum. Out-of-range samples clamp to the edge
 *    buckets, so percentiles are exact only for in-range data (pick
 *    bounds generously; the error is at most one bucket width for
 *    in-range samples).
 *
 * Registration (counter()/gauge()/histogram()) takes a mutex and
 * returns a reference that stays valid for the process lifetime —
 * instrumentation sites look their handle up once (typically a
 * function-local static) and never touch the lock again.
 *
 * snapshot() returns a consistent *copy* of every metric (each value
 * read atomically; the set of metrics is frozen under the
 * registration lock) that can be rendered as aligned text or JSON.
 * reset() zeroes all values but keeps the registrations, so cached
 * handles survive — the CLI and tests reset before a measured run.
 *
 * This header is dependency-free (standard library only) so that
 * recstack_common — the bottom of the library stack — can link it.
 * See docs/observability.md for naming conventions and overhead.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace recstack {
namespace obs {

/** Stripes per counter; a power of two so the index is a mask. */
constexpr size_t kCounterStripes = 16;

/** Monotonic counter, shard-striped to avoid write contention. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    /** Add @c delta on this thread's stripe (relaxed, lock-free). */
    void add(uint64_t delta = 1);

    /** Sum over all stripes (each stripe read atomically). */
    uint64_t value() const;

    /** Zero every stripe. Racy against concurrent add() by design. */
    void reset();

  private:
    struct alignas(64) Stripe {
        std::atomic<uint64_t> v{0};
    };
    Stripe stripes_[kCounterStripes];
};

/** Last-writer-wins instantaneous value. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { set(0.0); }

  private:
    std::atomic<double> v_{0.0};
};

/** Consistent copy of one histogram, with percentile queries. */
struct HistogramSnapshot {
    double lo = 0.0;
    double hi = 1.0;
    std::vector<uint64_t> counts;
    uint64_t total = 0;
    double sum = 0.0;

    double bucketWidth() const
    {
        return counts.empty() ? 0.0
                              : (hi - lo) / static_cast<double>(counts.size());
    }
    /**
     * p-th percentile (p in [0, 1]) with linear interpolation inside
     * the bucket holding the rank; for in-range samples this is
     * within one bucketWidth() of the exact order statistic. 0 on an
     * empty histogram.
     */
    double percentile(double p) const;
    double mean() const
    {
        return total ? sum / static_cast<double>(total) : 0.0;
    }

    /**
     * Fold @c other into this snapshot (bucket-wise count addition).
     * Both snapshots must share lo/hi/bucket-count; because bucketing
     * is deterministic, the merge of per-source histograms is
     * *identical* to recording every sample into one histogram, so a
     * merged percentile carries the same one-bucket error bound as a
     * single-histogram percentile. This is the fleet p99 roll-up:
     * per-node latency histograms merge into one fleet-wide tail.
     */
    void merge(const HistogramSnapshot& other);
};

/** Fixed-bucket concurrent histogram over [lo, hi). */
class LatencyHistogram
{
  public:
    LatencyHistogram(double lo, double hi, size_t buckets);
    LatencyHistogram(const LatencyHistogram&) = delete;
    LatencyHistogram& operator=(const LatencyHistogram&) = delete;

    /** Record one sample (clamped to the edge buckets). Lock-free. */
    void record(double x);

    /**
     * Fold a snapshot of another histogram with identical bounds and
     * bucket count into this one (per-bucket atomic adds). Concurrent
     * record() calls remain safe; the merge itself is not atomic as a
     * whole, so readers snapshotting mid-merge may see a partial fold
     * — merge quiescent histograms (the fleet merges after a node's
     * epoch completes).
     */
    void merge(const HistogramSnapshot& other);
    void merge(const LatencyHistogram& other) { merge(other.snapshot()); }

    HistogramSnapshot snapshot() const;
    void reset();

    double lo() const { return lo_; }
    double hi() const { return hi_; }
    size_t buckets() const { return counts_.size(); }
    double bucketWidth() const { return width_; }

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::atomic<uint64_t>> counts_;
    std::atomic<uint64_t> total_{0};
    std::atomic<double> sum_{0.0};
};

/** Copy of every metric at one snapshot() call. */
struct MetricsSnapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Aligned human-readable dump (one metric per line). */
    std::string renderText() const;
    /** JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}. */
    std::string renderJson() const;
};

/** Named registry of counters/gauges/histograms. See file comment. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /** The process-wide registry every built-in metric lives in. */
    static MetricsRegistry& global();

    /**
     * Find-or-create by name. References stay valid forever (metrics
     * are never deregistered). For histogram(), the bounds of the
     * first registration win; later calls with different bounds get
     * the existing histogram unchanged.
     */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LatencyHistogram& histogram(const std::string& name, double lo,
                                double hi, size_t buckets);

    MetricsSnapshot snapshot() const;

    /** Zero every metric, keeping registrations (and handles) alive. */
    void reset();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace obs
}  // namespace recstack

#endif  // RECSTACK_OBS_METRICS_H_
