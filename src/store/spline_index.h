#ifndef RECSTACK_STORE_SPLINE_INDEX_H_
#define RECSTACK_STORE_SPLINE_INDEX_H_

/**
 * @file
 * Radix-spline learned index over a static sorted key set.
 *
 * The disk tier (store/disk_tier.h) holds only the cold tail of every
 * embedding table, keyed by the store's 64-bit (table, row) keys — a
 * sparse, non-contiguous set (tables sit 2^40 apart, and each table
 * contributes only its cold rows), so locating a row's slot needs an
 * index rather than arithmetic. Instead of a B-tree or a plain binary
 * search over the key array, SplineIndex learns the key → ordinal CDF
 * the RadixSpline way (Kipf et al.; the same design EmbedDB uses on
 * microcontrollers):
 *
 *  1. build: one greedy pass fits a piecewise-linear spline over the
 *     (key, ordinal) points such that interpolating inside any
 *     segment predicts the true ordinal within `maxError` slots;
 *  2. a radix table over the leading bits of (key - minKey) narrows
 *     the spline-segment search to a handful of knots;
 *  3. lookup: radix prefix → knot range → binary search for the
 *     segment → linear interpolation → bounded search of the key
 *     array in [predicted - maxError, predicted + maxError].
 *
 * So a lookup costs one radix probe plus two short, cache-friendly
 * searches, independent of the total key count — versus log2(n)
 * scattered probes for a plain binary search. The binary-search path
 * is kept as the always-available reference (`findBinarySearch`) and
 * every spline answer is verified against it by the property tests in
 * tests/test_store_disk.cc and the bench_ext_store PAPER-CHECK.
 *
 * The index is immutable after construction and all lookups are
 * const, so concurrent readers need no synchronization.
 */

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace recstack {

/** Build-time knobs of a SplineIndex. */
struct SplineIndexConfig {
    /// Corridor half-width of the greedy spline fit: interpolation
    /// inside a segment is wrong by at most this many slots, so the
    /// final search window is 2*maxError+1 keys.
    size_t maxError = 32;
    /// log2 of the radix table size; clamped down for tiny key sets
    /// so the table never dwarfs the keys it indexes.
    int radixBits = 18;
};

/** Shape/size report of a built SplineIndex. */
struct SplineIndexStats {
    size_t numKeys = 0;
    size_t numSegments = 0;      ///< spline knots - 1
    size_t radixBits = 0;        ///< actual (possibly clamped) bits
    size_t maxErrorBound = 0;    ///< configured corridor half-width
    size_t maxErrorObserved = 0; ///< measured over every key at build
    size_t indexBytes = 0;       ///< knots + radix table footprint
};

/** Learned key → ordinal index; see file comment. */
class SplineIndex
{
  public:
    /// find() result for a key not in the set.
    static constexpr size_t kNotFound =
        std::numeric_limits<size_t>::max();

    /**
     * Build over strictly-increasing keys. The key array is moved in
     * and owned by the index (the bounded final search reads it);
     * keys() exposes it.
     */
    explicit SplineIndex(std::vector<uint64_t> sorted_keys,
                         SplineIndexConfig config = {});

    /** Ordinal of `key` in the key set, or kNotFound. */
    size_t find(uint64_t key) const;

    /**
     * Reference lookup: plain std::lower_bound over the whole key
     * array. Identical answers to find() for every possible key.
     */
    size_t findBinarySearch(uint64_t key) const;

    const std::vector<uint64_t>& keys() const { return keys_; }
    size_t size() const { return keys_.size(); }
    SplineIndexStats stats() const;

  private:
    /// One spline knot: interpolate ordinals between adjacent knots.
    struct Knot {
        uint64_t key = 0;
        size_t ordinal = 0;
    };

    void buildSpline();
    void buildRadixTable();
    /// Predicted ordinal of a key known to lie in [minKey, maxKey].
    size_t predict(uint64_t key) const;

    SplineIndexConfig config_;
    std::vector<uint64_t> keys_;
    std::vector<Knot> knots_;
    /// radix_[p] = first knot whose shifted key prefix is >= p; the
    /// segment containing a key lies in knots_[radix_[p] - 1 ..
    /// radix_[p + 1]].
    std::vector<uint32_t> radix_;
    int shiftBits_ = 0;
    int radixBits_ = 0;
    size_t maxErrorObserved_ = 0;
};

}  // namespace recstack

#endif  // RECSTACK_STORE_SPLINE_INDEX_H_
