#ifndef RECSTACK_STORE_ROW_CACHE_H_
#define RECSTACK_STORE_ROW_CACHE_H_

/**
 * @file
 * Byte-capacity-bound hot-row cache used by one EmbeddingStore shard.
 *
 * Two replacement policies are supported:
 *
 *  - kLRU:   exact least-recently-used via an intrusive recency list;
 *            every hit splices the entry to the front, eviction pops
 *            the back.
 *  - kClock: second-chance approximation; hits only set a reference
 *            bit, the clock hand sweeps entries clearing bits and
 *            evicts the first unreferenced one. Cheaper per hit than
 *            LRU (no list surgery), which is why production caches
 *            (and the EmbedDB-style embedded stores) favor it.
 *
 * The cache stores row payload copies keyed by a 64-bit (table, row)
 * key. It is not internally synchronized: the owning shard's mutex
 * guards every call, and pointers returned by find()/insert() are
 * only valid while that lock is held.
 */

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace recstack {

/** Replacement policy of a shard's hot-row cache. */
enum class CachePolicy { kLRU, kClock };

/** Printable policy name ("lru" / "clock"). */
const char* cachePolicyName(CachePolicy policy);

/** One shard's row cache; see file comment for locking rules. */
class RowCache
{
  public:
    RowCache(CachePolicy policy, size_t capacity_bytes);

    /**
     * Look up a cached row. Returns the cached payload (valid while
     * the shard lock is held) or nullptr on miss. A hit updates
     * recency state (LRU splice / CLOCK reference bit).
     */
    const float* find(uint64_t key);

    /**
     * Insert a row payload copy, evicting per policy until it fits.
     * Rows larger than the whole capacity bypass the cache. Bumps
     * *evictions once per victim. No-op if the key is already cached.
     */
    void insert(uint64_t key, const float* row, size_t row_bytes,
                uint64_t* evictions);

    /**
     * Overwrite the cached payload for a key if (and only if) it is
     * resident, keeping cached data coherent with a backing-store
     * write. Returns true when a cached copy was refreshed.
     */
    bool refresh(uint64_t key, const float* row, size_t row_bytes);

    /** Drop a key if cached. */
    void erase(uint64_t key);

    size_t bytesUsed() const { return used_; }
    size_t capacityBytes() const { return capacity_; }
    size_t entries() const { return entries_.size(); }
    CachePolicy policy() const { return policy_; }

  private:
    struct Entry {
        uint64_t key = 0;
        std::vector<float> values;
        bool referenced = false;  // CLOCK second-chance bit
    };
    using EntryList = std::list<Entry>;

    void evictOne(uint64_t* evictions);

    CachePolicy policy_;
    size_t capacity_;
    size_t used_ = 0;
    EntryList entries_;
    EntryList::iterator hand_;  // CLOCK sweep position
    std::unordered_map<uint64_t, EntryList::iterator> index_;
};

}  // namespace recstack

#endif  // RECSTACK_STORE_ROW_CACHE_H_
