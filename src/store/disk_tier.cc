#include "store/disk_tier.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace recstack {
namespace {

constexpr uint64_t kMagic = 0x52535431'50414745ull;  // "RST1PAGE"
constexpr uint64_t kEmptyFrame = UINT64_MAX;

/** Fixed-width header fields at the start of page 0. */
struct FileHeader {
    uint64_t magic = kMagic;
    uint64_t pageBytes = 0;
    uint64_t numTables = 0;
    uint64_t numKeys = 0;
    uint64_t numDataPages = 0;
};

/** Per-table record serialized right after the header fields. */
struct FileTableRecord {
    int64_t table = 0;
    int64_t dim = 0;
    uint64_t coldRows = 0;
    uint64_t firstKeyIndex = 0;
    uint64_t firstDataPage = 0;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

void
pwriteAll(int fd, const void* buf, size_t n, off_t off)
{
    const uint8_t* p = static_cast<const uint8_t*>(buf);
    while (n > 0) {
        const ssize_t w = ::pwrite(fd, p, n, off);
        RECSTACK_CHECK(w > 0, "disk tier pwrite failed (errno "
                                  << errno << ")");
        p += w;
        off += w;
        n -= static_cast<size_t>(w);
    }
}

void
preadAll(int fd, void* buf, size_t n, off_t off)
{
    uint8_t* p = static_cast<uint8_t*>(buf);
    while (n > 0) {
        const ssize_t r = ::pread(fd, p, n, off);
        RECSTACK_CHECK(r > 0, "disk tier pread failed (errno "
                                  << errno << ")");
        p += r;
        off += r;
        n -= static_cast<size_t>(r);
    }
}

}  // namespace

// --- Builder ----------------------------------------------------------

DiskTier::Builder::Builder(std::string path, DiskTierConfig config)
    : path_(std::move(path)), config_(config)
{
    RECSTACK_CHECK(config_.pageBytes >= 512 &&
                       (config_.pageBytes &
                        (config_.pageBytes - 1)) == 0,
                   "disk tier pageBytes must be a power of two >= 512");
    RECSTACK_CHECK(config_.bufferPages >= 1,
                   "disk tier needs at least one buffer page");
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    RECSTACK_CHECK(fd_ >= 0, "cannot create disk tier file '"
                                 << path_ << "' (errno " << errno
                                 << ")");
    pageBuf_.assign(config_.pageBytes, 0);
}

DiskTier::Builder::~Builder()
{
    if (fd_ >= 0) {
        ::close(fd_);
        if (!finished_) {
            ::unlink(path_.c_str());  // abandoned build
        }
    }
}

void
DiskTier::Builder::beginTable(int table, int64_t dim)
{
    RECSTACK_CHECK(!finished_, "builder already finished");
    RECSTACK_CHECK(dim > 0, "table dim must be positive");
    RECSTACK_CHECK(static_cast<size_t>(dim) * sizeof(float) <=
                       config_.pageBytes,
                   "row payload (" << dim * 4
                                   << " B) exceeds the page size");
    RECSTACK_CHECK(tables_.empty() || tables_.back().table < table,
                   "tables must be added in ascending id order");
    flushDataPage();
    PendingTable t;
    t.table = table;
    t.dim = dim;
    t.firstKeyIndex = keys_.size();
    t.firstDataPage = nextDataPage_;
    tables_.push_back(t);
}

void
DiskTier::Builder::appendRow(int64_t row, const float* payload)
{
    RECSTACK_CHECK(!tables_.empty(), "beginTable before appendRow");
    PendingTable& t = tables_.back();
    const uint64_t key =
        (static_cast<uint64_t>(t.table) << 40) |
        static_cast<uint64_t>(row);
    RECSTACK_CHECK(keys_.empty() || keys_.back() < key,
                   "rows must be appended in ascending key order");
    const size_t row_bytes =
        static_cast<size_t>(t.dim) * sizeof(float);
    if (pageFill_ + row_bytes > config_.pageBytes) {
        flushDataPage();
    }
    std::memcpy(pageBuf_.data() + pageFill_, payload, row_bytes);
    pageFill_ += row_bytes;
    keys_.push_back(key);
    ++t.coldRows;
}

void
DiskTier::Builder::flushDataPage()
{
    if (pageFill_ == 0) {
        return;
    }
    std::memset(pageBuf_.data() + pageFill_, 0,
                config_.pageBytes - pageFill_);
    pwriteAll(fd_, pageBuf_.data(), config_.pageBytes,
              static_cast<off_t>((1 + nextDataPage_) *
                                 config_.pageBytes));
    ++nextDataPage_;
    pageFill_ = 0;
}

std::unique_ptr<DiskTier>
DiskTier::Builder::finish()
{
    RECSTACK_CHECK(!finished_, "builder already finished");
    flushDataPage();

    // Key pages land after the data region.
    const size_t pb = config_.pageBytes;
    const uint64_t key_pages =
        (keys_.size() * sizeof(uint64_t) + pb - 1) / pb;
    for (uint64_t kp = 0; kp < key_pages; ++kp) {
        std::memset(pageBuf_.data(), 0, pb);
        const size_t first = kp * (pb / sizeof(uint64_t));
        const size_t count = std::min(
            pb / sizeof(uint64_t), keys_.size() - first);
        std::memcpy(pageBuf_.data(), keys_.data() + first,
                    count * sizeof(uint64_t));
        pwriteAll(fd_, pageBuf_.data(), pb,
                  static_cast<off_t>((1 + nextDataPage_ + kp) * pb));
    }

    // Table records trail the keys (their count is only known now,
    // and a wide model can hold more tables than one page fits).
    std::vector<FileTableRecord> recs(tables_.size());
    for (size_t i = 0; i < tables_.size(); ++i) {
        recs[i].table = tables_[i].table;
        recs[i].dim = tables_[i].dim;
        recs[i].coldRows = tables_[i].coldRows;
        recs[i].firstKeyIndex = tables_[i].firstKeyIndex;
        recs[i].firstDataPage = 1 + tables_[i].firstDataPage;
    }
    const size_t rec_bytes = recs.size() * sizeof(FileTableRecord);
    const uint64_t rec_pages = (rec_bytes + pb - 1) / pb;
    if (rec_pages > 0) {
        std::vector<uint8_t> rec_buf(rec_pages * pb, 0);
        std::memcpy(rec_buf.data(), recs.data(), rec_bytes);
        pwriteAll(fd_, rec_buf.data(), rec_pages * pb,
                  static_cast<off_t>(
                      (1 + nextDataPage_ + key_pages) * pb));
    }

    // Header page last: a torn build leaves an invalid magic.
    FileHeader hdr;
    hdr.pageBytes = pb;
    hdr.numTables = tables_.size();
    hdr.numKeys = keys_.size();
    hdr.numDataPages = nextDataPage_;
    std::memset(pageBuf_.data(), 0, pb);
    std::memcpy(pageBuf_.data(), &hdr, sizeof(hdr));
    pwriteAll(fd_, pageBuf_.data(), pb, 0);
    RECSTACK_CHECK(::fsync(fd_) == 0, "disk tier fsync failed");
    ::close(fd_);
    fd_ = -1;
    finished_ = true;
    return DiskTier::open(path_, config_);
}

// --- DiskTier ---------------------------------------------------------

std::unique_ptr<DiskTier>
DiskTier::open(const std::string& path, DiskTierConfig config)
{
    auto tier = std::unique_ptr<DiskTier>(new DiskTier());
    tier->path_ = path;
    tier->config_ = config;

    tier->fd_ = ::open(path.c_str(), O_RDWR);
    RECSTACK_CHECK(tier->fd_ >= 0, "cannot open disk tier file '"
                                       << path << "' (errno " << errno
                                       << ")");
    FileHeader hdr;
    preadAll(tier->fd_, &hdr, sizeof(hdr), 0);
    RECSTACK_CHECK(hdr.magic == kMagic,
                   "'" << path << "' is not a recstack page file");
    tier->config_.pageBytes = hdr.pageBytes;
    tier->numDataPages_ = hdr.numDataPages;

    // Persisted key array -> learned index rebuilt on every open.
    std::vector<uint64_t> keys(hdr.numKeys);
    if (hdr.numKeys > 0) {
        preadAll(tier->fd_, keys.data(),
                 hdr.numKeys * sizeof(uint64_t),
                 static_cast<off_t>((1 + hdr.numDataPages) *
                                    hdr.pageBytes));
    }

    // Table records trail the key pages.
    const uint64_t key_pages =
        (hdr.numKeys * sizeof(uint64_t) + hdr.pageBytes - 1) /
        hdr.pageBytes;
    std::vector<FileTableRecord> recs(hdr.numTables);
    if (hdr.numTables > 0) {
        preadAll(tier->fd_, recs.data(),
                 hdr.numTables * sizeof(FileTableRecord),
                 static_cast<off_t>(
                     (1 + hdr.numDataPages + key_pages) *
                     hdr.pageBytes));
    }
    tier->tables_.reserve(hdr.numTables);
    for (const FileTableRecord& rec : recs) {
        TableRecord t;
        t.table = static_cast<int>(rec.table);
        t.dim = rec.dim;
        t.coldRows = rec.coldRows;
        t.firstKeyIndex = rec.firstKeyIndex;
        t.firstDataPage = rec.firstDataPage;
        tier->tables_.push_back(t);
    }
    tier->index_ = std::make_unique<SplineIndex>(
        std::move(keys), tier->config_.spline);

    struct stat st;
    RECSTACK_CHECK(::fstat(tier->fd_, &st) == 0,
                   "disk tier fstat failed");
    tier->fileBytes_ = static_cast<size_t>(st.st_size);

    tier->mapOrOpen(/*fresh_file=*/false);
    tier->setupPool();
    return tier;
}

void
DiskTier::mapOrOpen(bool /*fresh_file*/)
{
    if (config_.directIO) {
#ifdef O_DIRECT
        const int dfd = ::open(path_.c_str(), O_RDWR | O_DIRECT);
        if (dfd >= 0) {
            ::close(fd_);
            fd_ = dfd;
            directIOActive_ = true;
        }
        // else: filesystem refuses O_DIRECT (tmpfs etc.) -> keep the
        // plain descriptor, pread path still exercised.
#endif
        return;  // pread mode, direct or buffered
    }
    void* m = ::mmap(nullptr, fileBytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd_, 0);
    RECSTACK_CHECK(m != MAP_FAILED, "disk tier mmap failed (errno "
                                        << errno << ")");
    map_ = static_cast<uint8_t*>(m);
}

void
DiskTier::setupPool()
{
    const size_t bytes = config_.bufferPages * config_.pageBytes;
    void* p = nullptr;
    RECSTACK_CHECK(::posix_memalign(&p, 4096, bytes) == 0,
                   "disk tier buffer pool allocation failed");
    pool_ = static_cast<uint8_t*>(p);
    frames_.assign(config_.bufferPages, Frame{});
}

DiskTier::~DiskTier()
{
    if (map_ != nullptr) {
        ::msync(map_, fileBytes_, MS_SYNC);
        ::munmap(map_, fileBytes_);
    }
    if (fd_ >= 0) {
        ::close(fd_);
    }
    std::free(pool_);
    if (!config_.keepFile && !path_.empty()) {
        ::unlink(path_.c_str());
    }
}

const DiskTier::TableRecord*
DiskTier::recordFor(uint64_t key, size_t ordinal) const
{
    const int table = static_cast<int>(key >> 40);
    for (const TableRecord& t : tables_) {
        if (t.table == table) {
            RECSTACK_CHECK(ordinal >= t.firstKeyIndex &&
                               ordinal <
                                   t.firstKeyIndex + t.coldRows,
                           "spline ordinal " << ordinal
                                             << " outside table "
                                             << table << " region");
            return &t;
        }
    }
    return nullptr;
}

void
DiskTier::loadPageLocked(uint64_t page, uint8_t* frame)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (map_ != nullptr) {
        std::memcpy(frame, map_ + page * config_.pageBytes,
                    config_.pageBytes);
    } else {
        preadAll(fd_, frame, config_.pageBytes,
                 static_cast<off_t>(page * config_.pageBytes));
    }
    stats_.readSeconds += secondsSince(t0);
    ++stats_.pageLoads;
}

size_t
DiskTier::fetchPageLocked(uint64_t page)
{
    // The pool is small by design (tens of frames), so a linear scan
    // beats a heap-allocated map and keeps this path allocation-free.
    for (size_t i = 0; i < frames_.size(); ++i) {
        if (frames_[i].page == page) {
            frames_[i].referenced = true;
            ++stats_.pageHits;
            return i;
        }
    }
    // CLOCK second chance over the frame ring.
    for (;;) {
        Frame& f = frames_[clockHand_];
        if (f.page == kEmptyFrame || !f.referenced) {
            const size_t idx = clockHand_;
            clockHand_ = (clockHand_ + 1) % frames_.size();
            if (f.page != kEmptyFrame) {
                ++stats_.pageEvictions;
            }
            loadPageLocked(page, pool_ + idx * config_.pageBytes);
            f.page = page;
            f.referenced = true;
            return idx;
        }
        f.referenced = false;
        clockHand_ = (clockHand_ + 1) % frames_.size();
    }
}

bool
DiskTier::readRowIndexed(uint64_t key, size_t ordinal, float* dst)
{
    if (ordinal == SplineIndex::kNotFound) {
        return false;
    }
    const TableRecord* rec = recordFor(key, ordinal);
    if (rec == nullptr) {
        return false;
    }
    const size_t row_bytes =
        static_cast<size_t>(rec->dim) * sizeof(float);
    const uint64_t rows_per_page = config_.pageBytes / row_bytes;
    const uint64_t k = ordinal - rec->firstKeyIndex;
    const uint64_t page = rec->firstDataPage + k / rows_per_page;
    const size_t off =
        static_cast<size_t>(k % rows_per_page) * row_bytes;

    std::lock_guard<std::mutex> lock(mu_);
    const size_t frame = fetchPageLocked(page);
    std::memcpy(dst, pool_ + frame * config_.pageBytes + off,
                row_bytes);
    ++stats_.rowReads;
    stats_.bytesRead += row_bytes;
    return true;
}

bool
DiskTier::readRow(uint64_t key, float* dst)
{
    return readRowIndexed(key, index_->find(key), dst);
}

bool
DiskTier::readRowBinarySearch(uint64_t key, float* dst)
{
    return readRowIndexed(key, index_->findBinarySearch(key), dst);
}

bool
DiskTier::writeRow(uint64_t key, const float* src)
{
    const size_t ordinal = index_->find(key);
    if (ordinal == SplineIndex::kNotFound) {
        return false;
    }
    const TableRecord* rec = recordFor(key, ordinal);
    if (rec == nullptr) {
        return false;
    }
    const size_t row_bytes =
        static_cast<size_t>(rec->dim) * sizeof(float);
    const uint64_t rows_per_page = config_.pageBytes / row_bytes;
    const uint64_t k = ordinal - rec->firstKeyIndex;
    const uint64_t page = rec->firstDataPage + k / rows_per_page;
    const size_t off =
        static_cast<size_t>(k % rows_per_page) * row_bytes;

    std::lock_guard<std::mutex> lock(mu_);
    if (map_ != nullptr) {
        std::memcpy(map_ + page * config_.pageBytes + off, src,
                    row_bytes);
        // Refresh any pooled copy so readers never see the old page.
        for (Frame& f : frames_) {
            if (f.page == page) {
                std::memcpy(pool_ + (&f - frames_.data()) *
                                        config_.pageBytes +
                                off,
                            src, row_bytes);
            }
        }
    } else {
        // pread mode: mutate the pooled frame (loading it first if
        // needed) and write the whole aligned page back.
        const size_t frame = fetchPageLocked(page);
        std::memcpy(pool_ + frame * config_.pageBytes + off, src,
                    row_bytes);
        pwriteAll(fd_, pool_ + frame * config_.pageBytes,
                  config_.pageBytes,
                  static_cast<off_t>(page * config_.pageBytes));
    }
    ++stats_.rowWrites;
    return true;
}

bool
DiskTier::contains(uint64_t key) const
{
    return index_->find(key) != SplineIndex::kNotFound;
}

int64_t
DiskTier::tableDim(int table) const
{
    for (const TableRecord& t : tables_) {
        if (t.table == table) {
            return t.dim;
        }
    }
    return 0;
}

uint64_t
DiskTier::tableRows(int table) const
{
    for (const TableRecord& t : tables_) {
        if (t.table == table) {
            return t.coldRows;
        }
    }
    return 0;
}

DiskTierStats
DiskTier::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    DiskTierStats s = stats_;
    s.numDataPages = numDataPages_;
    s.fileBytes = fileBytes_;
    s.frameBytes = config_.bufferPages * config_.pageBytes;
    s.directIOActive = directIOActive_;
    s.mmapActive = map_ != nullptr;
    s.spline = index_->stats();
    return s;
}

void
DiskTier::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DiskTierStats{};
}

}  // namespace recstack
