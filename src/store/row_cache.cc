#include "store/row_cache.h"

#include <cstring>

namespace recstack {

const char*
cachePolicyName(CachePolicy policy)
{
    return policy == CachePolicy::kLRU ? "lru" : "clock";
}

RowCache::RowCache(CachePolicy policy, size_t capacity_bytes)
    : policy_(policy), capacity_(capacity_bytes), hand_(entries_.end())
{
}

const float*
RowCache::find(uint64_t key)
{
    auto it = index_.find(key);
    if (it == index_.end()) {
        return nullptr;
    }
    EntryList::iterator entry = it->second;
    if (policy_ == CachePolicy::kLRU) {
        entries_.splice(entries_.begin(), entries_, entry);
    } else {
        entry->referenced = true;
    }
    return entry->values.data();
}

void
RowCache::evictOne(uint64_t* evictions)
{
    if (entries_.empty()) {
        return;
    }
    EntryList::iterator victim;
    if (policy_ == CachePolicy::kLRU) {
        victim = std::prev(entries_.end());
    } else {
        // Sweep the hand, granting one second chance per referenced
        // entry; terminates because each pass clears a bit.
        for (;;) {
            if (hand_ == entries_.end()) {
                hand_ = entries_.begin();
            }
            if (!hand_->referenced) {
                victim = hand_;
                ++hand_;
                break;
            }
            hand_->referenced = false;
            ++hand_;
        }
    }
    used_ -= victim->values.size() * sizeof(float);
    index_.erase(victim->key);
    entries_.erase(victim);
    if (evictions != nullptr) {
        ++*evictions;
    }
}

void
RowCache::insert(uint64_t key, const float* row, size_t row_bytes,
                 uint64_t* evictions)
{
    if (row_bytes > capacity_ || capacity_ == 0) {
        return;  // bypass: a row the cache can never hold
    }
    if (index_.count(key) != 0) {
        return;
    }
    while (used_ + row_bytes > capacity_) {
        evictOne(evictions);
    }
    Entry entry;
    entry.key = key;
    entry.values.resize(row_bytes / sizeof(float));
    std::memcpy(entry.values.data(), row, row_bytes);
    entry.referenced = policy_ == CachePolicy::kClock;
    entries_.push_front(std::move(entry));
    index_[key] = entries_.begin();
    used_ += row_bytes;
    if (policy_ == CachePolicy::kClock && hand_ == entries_.end()) {
        hand_ = entries_.begin();
    }
}

bool
RowCache::refresh(uint64_t key, const float* row, size_t row_bytes)
{
    auto it = index_.find(key);
    if (it == index_.end()) {
        return false;
    }
    Entry& entry = *it->second;
    if (entry.values.size() * sizeof(float) != row_bytes) {
        erase(key);
        return false;
    }
    std::memcpy(entry.values.data(), row, row_bytes);
    return true;
}

void
RowCache::erase(uint64_t key)
{
    auto it = index_.find(key);
    if (it == index_.end()) {
        return;
    }
    EntryList::iterator entry = it->second;
    used_ -= entry->values.size() * sizeof(float);
    index_.erase(it);
    if (policy_ == CachePolicy::kClock && hand_ == entry) {
        ++hand_;
    }
    entries_.erase(entry);
}

}  // namespace recstack
