#include "store/embedding_store.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace recstack {
namespace {

/** 64-bit (table, row) cache key; rows stay far below 2^40. */
uint64_t
rowKey(int table, int64_t row)
{
    return (static_cast<uint64_t>(table) << 40) |
           static_cast<uint64_t>(row);
}

double
fetchCost(double latency_s, double bandwidth_gbs, uint64_t bytes)
{
    return latency_s +
           static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
}

}  // namespace

void
ShardCounters::accumulate(const ShardCounters& other)
{
    lookups += other.lookups;
    hits += other.hits;
    nearFetches += other.nearFetches;
    farFetches += other.farFetches;
    evictions += other.evictions;
    updates += other.updates;
    prefetchedRows += other.prefetchedRows;
    bytesFromCache += other.bytesFromCache;
    bytesFromNear += other.bytesFromNear;
    bytesFromFar += other.bytesFromFar;
    cacheBytesUsed += other.cacheBytesUsed;
    simSeconds += other.simSeconds;
}

double
ShardCounters::hitRate() const
{
    return lookups > 0
               ? static_cast<double>(hits) / static_cast<double>(lookups)
               : 0.0;
}

double
StoreStats::costPercentile(double p) const
{
    uint64_t n = 0;
    for (const auto& [cost, count] : costHistogram) {
        n += count;
    }
    if (n == 0) {
        return 0.0;
    }
    const uint64_t rank = static_cast<uint64_t>(
        std::min<double>(static_cast<double>(n - 1),
                         std::max(0.0, p) * static_cast<double>(n)));
    uint64_t seen = 0;
    for (const auto& [cost, count] : costHistogram) {
        seen += count;
        if (seen > rank) {
            return cost;
        }
    }
    return costHistogram.rbegin()->first;
}

EmbeddingStore::EmbeddingStore(StoreConfig config)
    : config_(config)
{
    RECSTACK_CHECK(config_.numShards >= 1,
                   "store needs at least one shard");
    RECSTACK_CHECK(config_.nearTierFraction >= 0.0 &&
                       config_.nearTierFraction <= 1.0,
                   "nearTierFraction must be in [0, 1]");
    shards_.reserve(static_cast<size_t>(config_.numShards));
    for (int s = 0; s < config_.numShards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->cache = std::make_unique<RowCache>(
            config_.policy, config_.cacheBytesPerShard);
        shards_.push_back(std::move(shard));
    }
}

EmbeddingStore::~EmbeddingStore()
{
    {
        std::lock_guard<std::mutex> lock(prefetchMu_);
        prefetchStop_ = true;
    }
    prefetchCv_.notify_all();
    if (prefetchThread_.joinable()) {
        prefetchThread_.join();
    }
}

int
EmbeddingStore::registerTable(const std::string& name, TableInfo info,
                              Tensor data)
{
    RECSTACK_CHECK(tableByName_.count(name) == 0,
                   "store already owns a table named '" << name << "'");
    RECSTACK_CHECK(info.rows > 0 && info.dim > 0,
                   "table '" << name << "' needs positive rows and dim");
    info.name = name;
    info.nearRows = std::min<int64_t>(
        info.rows,
        static_cast<int64_t>(std::ceil(
            config_.nearTierFraction * static_cast<double>(info.rows))));
    const int id = static_cast<int>(tables_.size());
    Table t;
    t.info = std::move(info);
    t.data = std::move(data);
    tables_.push_back(std::move(t));
    tableByName_[name] = id;
    return id;
}

int
EmbeddingStore::addTable(const std::string& name, Tensor data)
{
    RECSTACK_CHECK(data.rank() == 2 && data.dtype() == DType::kFloat32,
                   "store table '" << name << "' must be 2-D float");
    RECSTACK_CHECK(data.materialized(),
                   "addTable needs a materialized tensor; use "
                   "declareTable for shape-only stacks");
    TableInfo info;
    info.rows = data.dim(0);
    info.dim = data.dim(1);
    info.materialized = true;
    return registerTable(name, std::move(info), std::move(data));
}

int
EmbeddingStore::declareTable(const std::string& name, int64_t rows,
                             int64_t dim)
{
    TableInfo info;
    info.rows = rows;
    info.dim = dim;
    info.materialized = false;
    return registerTable(name, std::move(info),
                         Tensor::shapeOnly({rows, dim}));
}

int
EmbeddingStore::tableId(const std::string& name) const
{
    auto it = tableByName_.find(name);
    return it == tableByName_.end() ? -1 : it->second;
}

const EmbeddingStore::TableInfo&
EmbeddingStore::tableInfo(int table) const
{
    RECSTACK_CHECK(table >= 0 &&
                       table < static_cast<int>(tables_.size()),
                   "table id " << table << " out of range");
    return tables_[static_cast<size_t>(table)].info;
}

size_t
EmbeddingStore::rowShard(int table, int64_t row, size_t num_shards)
{
    // Offsetting by the table id decorrelates the Zipf heads of
    // co-stored tables (all hot at row 0) across shards.
    return static_cast<size_t>(
        (static_cast<uint64_t>(row) + static_cast<uint64_t>(table)) %
        static_cast<uint64_t>(num_shards));
}

size_t
EmbeddingStore::shardOf(int table, int64_t row) const
{
    return rowShard(table, row,
                    static_cast<size_t>(config_.numShards));
}

const float*
EmbeddingStore::fetchRowLocked(const Table& t, int table, int64_t row,
                               Shard& shard)
{
    const uint64_t row_bytes =
        static_cast<uint64_t>(t.info.dim) * sizeof(float);
    ++shard.counters.lookups;
    const uint64_t key = rowKey(table, row);
    const float* cached = shard.cache->find(key);
    if (cached != nullptr) {
        ++shard.counters.hits;
        shard.counters.bytesFromCache += row_bytes;
        const double cost = config_.cacheHitLatencySeconds;
        shard.counters.simSeconds += cost;
        ++shard.costs[cost];
        return cached;
    }
    RECSTACK_CHECK(t.info.materialized,
                   "lookup on declared-only store table '"
                       << t.info.name << "'");
    const float* src =
        t.data.data<float>() + row * t.info.dim;
    double cost;
    if (row < t.info.nearRows) {
        ++shard.counters.nearFetches;
        shard.counters.bytesFromNear += row_bytes;
        cost = fetchCost(config_.nearLatencySeconds,
                         config_.nearBandwidthGBs, row_bytes);
    } else {
        ++shard.counters.farFetches;
        shard.counters.bytesFromFar += row_bytes;
        cost = fetchCost(config_.farLatencySeconds,
                         config_.farBandwidthGBs, row_bytes);
    }
    shard.counters.simSeconds += cost;
    ++shard.costs[cost];
    shard.cache->insert(key, src, row_bytes, &shard.counters.evictions);
    return src;
}

void
EmbeddingStore::lookupSum(int table, const int64_t* indices,
                          const int64_t* offsets, int64_t b_lo,
                          int64_t b_hi, float* out, const float* weights)
{
    const Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    const int64_t dim = t.info.dim;
    RECSTACK_SPAN("store.lookup_sum",
                  {{"table", table},
                   {"rows", offsets[b_hi] - offsets[b_lo]}});
    for (int64_t b = b_lo; b < b_hi; ++b) {
        float* yrow = out + b * dim;
        for (int64_t d = 0; d < dim; ++d) {
            yrow[d] = 0.0f;
        }
        for (int64_t p = offsets[b]; p < offsets[b + 1]; ++p) {
            const int64_t row = indices[p];
            Shard& shard = *shards_[shardOf(table, row)];
            std::lock_guard<std::mutex> lock(shard.mu);
            const float* src = fetchRowLocked(t, table, row, shard);
            if (weights != nullptr) {
                const float scale = weights[p];
                for (int64_t d = 0; d < dim; ++d) {
                    yrow[d] += scale * src[d];
                }
            } else {
                for (int64_t d = 0; d < dim; ++d) {
                    yrow[d] += src[d];
                }
            }
        }
    }
}

void
EmbeddingStore::lookupGather(int table, const int64_t* indices,
                             int64_t lo, int64_t hi, float* out)
{
    const Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    const int64_t dim = t.info.dim;
    RECSTACK_SPAN("store.gather", {{"table", table}, {"rows", hi - lo}});
    for (int64_t i = lo; i < hi; ++i) {
        const int64_t row = indices[i];
        float* dst = out + i * dim;
        Shard& shard = *shards_[shardOf(table, row)];
        std::lock_guard<std::mutex> lock(shard.mu);
        const float* src = fetchRowLocked(t, table, row, shard);
        std::memcpy(dst, src,
                    static_cast<size_t>(dim) * sizeof(float));
    }
}

void
EmbeddingStore::update(int table, int64_t row, const float* values)
{
    Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    RECSTACK_CHECK(t.info.materialized,
                   "update on declared-only store table '"
                       << t.info.name << "'");
    RECSTACK_CHECK(row >= 0 && row < t.info.rows,
                   "update row " << row << " out of range for '"
                                 << t.info.name << "'");
    const size_t row_bytes =
        static_cast<size_t>(t.info.dim) * sizeof(float);
    Shard& shard = *shards_[shardOf(table, row)];
    std::lock_guard<std::mutex> lock(shard.mu);
    // Write-through under the same lock readers of this row take, so
    // a reader sees either the old or the new payload, never a blend,
    // and any cached copy is refreshed before the lock is released.
    std::memcpy(t.data.data<float>() + row * t.info.dim, values,
                row_bytes);
    shard.cache->refresh(rowKey(table, row), values, row_bytes);
    ++shard.counters.updates;
}

void
EmbeddingStore::warmRow(int table, int64_t row)
{
    const Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    if (!t.info.materialized || row < 0 || row >= t.info.rows) {
        return;
    }
    const uint64_t row_bytes =
        static_cast<uint64_t>(t.info.dim) * sizeof(float);
    Shard& shard = *shards_[shardOf(table, row)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint64_t key = rowKey(table, row);
    if (shard.cache->find(key) != nullptr) {
        return;  // already hot
    }
    const float* src = t.data.data<float>() + row * t.info.dim;
    shard.cache->insert(key, src, row_bytes,
                        &shard.counters.evictions);
    ++shard.counters.prefetchedRows;
    // Prefetch fetch time is overlapped with compute, so it is not
    // charged to demand simSeconds / the cost histogram.
}

void
EmbeddingStore::prefetch(int table, const int64_t* indices,
                         int64_t count)
{
    for (int64_t i = 0; i < count; ++i) {
        warmRow(table, indices[i]);
    }
}

void
EmbeddingStore::prefetchAsync(int table, std::vector<int64_t> indices)
{
    std::unique_lock<std::mutex> lock(prefetchMu_);
    if (!prefetchThread_.joinable()) {
        prefetchThread_ = std::thread([this] { prefetchLoop(); });
    }
    prefetchQueue_.push_back(PrefetchTask{table, std::move(indices)});
    lock.unlock();
    prefetchCv_.notify_one();
}

void
EmbeddingStore::prefetchLoop()
{
    for (;;) {
        PrefetchTask task;
        {
            std::unique_lock<std::mutex> lock(prefetchMu_);
            prefetchCv_.wait(lock, [this] {
                return prefetchStop_ || !prefetchQueue_.empty();
            });
            if (prefetchQueue_.empty()) {
                return;  // stop requested with nothing pending
            }
            task = std::move(prefetchQueue_.front());
            prefetchQueue_.pop_front();
            prefetchBusy_ = true;
        }
        for (int64_t row : task.indices) {
            warmRow(task.table, row);
        }
        {
            std::lock_guard<std::mutex> lock(prefetchMu_);
            prefetchBusy_ = false;
        }
        prefetchIdleCv_.notify_all();
    }
}

void
EmbeddingStore::drainPrefetch()
{
    std::unique_lock<std::mutex> lock(prefetchMu_);
    prefetchIdleCv_.wait(lock, [this] {
        return prefetchQueue_.empty() && !prefetchBusy_;
    });
}

StoreStats
EmbeddingStore::stats() const
{
    StoreStats out;
    out.perShard.reserve(shards_.size());
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        ShardCounters c = shard->counters;
        c.cacheBytesUsed = shard->cache->bytesUsed();
        out.perShard.push_back(c);
        out.total.accumulate(c);
        for (const auto& [cost, count] : shard->costs) {
            out.costHistogram[cost] += count;
        }
    }
    return out;
}

void
EmbeddingStore::resetStats()
{
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->counters = ShardCounters{};
        shard->costs.clear();
    }
}

uint64_t
EmbeddingStore::tableBytes() const
{
    uint64_t n = 0;
    for (const Table& t : tables_) {
        if (t.info.materialized) {
            n += static_cast<uint64_t>(t.data.byteSize());
        }
    }
    return n;
}

uint64_t
EmbeddingStore::cacheBytesUsed() const
{
    uint64_t n = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        n += shard->cache->bytesUsed();
    }
    return n;
}

uint64_t
EmbeddingStore::cacheCapacityBytes() const
{
    return static_cast<uint64_t>(config_.numShards) *
           static_cast<uint64_t>(config_.cacheBytesPerShard);
}

double
EmbeddingStore::expectedHitRate(int table, double zipf) const
{
    const TableInfo& info = tableInfo(table);
    const uint64_t row_bytes =
        static_cast<uint64_t>(info.dim) * sizeof(float);
    const uint64_t share =
        cacheCapacityBytes() / std::max<size_t>(1, tables_.size());
    const uint64_t cache_rows = share / std::max<uint64_t>(1, row_bytes);
    const ZipfSampler sampler(static_cast<uint64_t>(info.rows), zipf);
    return sampler.cdf(cache_rows);
}

double
EmbeddingStore::farTierFraction(int table, double zipf) const
{
    const TableInfo& info = tableInfo(table);
    const uint64_t row_bytes =
        static_cast<uint64_t>(info.dim) * sizeof(float);
    const uint64_t share =
        cacheCapacityBytes() / std::max<size_t>(1, tables_.size());
    const uint64_t cache_rows = share / std::max<uint64_t>(1, row_bytes);
    // Far fetches are lookups past both the cached head and the
    // near-tier boundary.
    const uint64_t covered = std::max<uint64_t>(
        cache_rows, static_cast<uint64_t>(info.nearRows));
    const ZipfSampler sampler(static_cast<uint64_t>(info.rows), zipf);
    return 1.0 - sampler.cdf(covered);
}

bool
EmbeddingStore::disabledByEnv()
{
    const char* v = std::getenv("RECSTACK_DISABLE_STORE");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

void
exportStoreStats(const StoreStats& stats)
{
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("store.lookups").add(stats.total.lookups);
    reg.counter("store.hits").add(stats.total.hits);
    reg.counter("store.near_fetches").add(stats.total.nearFetches);
    reg.counter("store.far_fetches").add(stats.total.farFetches);
    reg.counter("store.evictions").add(stats.total.evictions);
    reg.gauge("store.cache_bytes_used")
        .set(static_cast<double>(stats.total.cacheBytesUsed));
}

}  // namespace recstack
