#include "store/embedding_store.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace recstack {
namespace {

/** 64-bit (table, row) cache key; rows stay far below 2^40. */
uint64_t
rowKey(int table, int64_t row)
{
    return (static_cast<uint64_t>(table) << 40) |
           static_cast<uint64_t>(row);
}

double
fetchCost(double latency_s, double bandwidth_gbs, uint64_t bytes)
{
    return latency_s +
           static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Bucket a measured duration to the next power of two of a
 * nanosecond, so the per-shard measured-cost map stays tiny no
 * matter how many distinct wall-clock values occur.
 */
double
diskCostBucket(double seconds)
{
    if (seconds <= 1e-9) {
        return 1e-9;
    }
    return std::exp2(std::ceil(std::log2(seconds)));
}

/** Shared exact-percentile walk over a cost -> count map. */
double
percentileOfCountMap(const std::map<double, uint64_t>& hist, double p)
{
    uint64_t n = 0;
    for (const auto& [cost, count] : hist) {
        n += count;
    }
    if (n == 0) {
        return 0.0;
    }
    const uint64_t rank = static_cast<uint64_t>(
        std::min<double>(static_cast<double>(n - 1),
                         std::max(0.0, p) * static_cast<double>(n)));
    uint64_t seen = 0;
    for (const auto& [cost, count] : hist) {
        seen += count;
        if (seen > rank) {
            return cost;
        }
    }
    return hist.rbegin()->first;
}

bool
envFlagSet(const char* name)
{
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/**
 * Resolve the page-file directory: explicit config dir, then
 * RECSTACK_STORE_DIR, then a fresh mkdtemp dir the store owns (and
 * removes when it dies).
 */
std::string
resolveDiskDir(const std::string& configured, bool* owns)
{
    *owns = false;
    if (!configured.empty()) {
        std::filesystem::create_directories(configured);
        return configured;
    }
    const char* env = std::getenv("RECSTACK_STORE_DIR");
    if (env != nullptr && *env != '\0') {
        std::filesystem::create_directories(env);
        return env;
    }
    const char* tmp = std::getenv("TMPDIR");
    std::string tmpl =
        std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
        "/recstack_store.XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    RECSTACK_CHECK(::mkdtemp(buf.data()) != nullptr,
                   "cannot create store temp dir from template '"
                       << tmpl << "'");
    *owns = true;
    return std::string(buf.data());
}

}  // namespace

const char*
farTierKindName(FarTierKind kind)
{
    switch (kind) {
      case FarTierKind::kSimulated: return "simulated";
      case FarTierKind::kDisk: return "disk";
    }
    return "?";
}

void
ShardCounters::accumulate(const ShardCounters& other)
{
    lookups += other.lookups;
    hits += other.hits;
    nearFetches += other.nearFetches;
    farFetches += other.farFetches;
    diskFetches += other.diskFetches;
    evictions += other.evictions;
    updates += other.updates;
    prefetchedRows += other.prefetchedRows;
    promotedRows += other.promotedRows;
    demotedRows += other.demotedRows;
    bytesFromCache += other.bytesFromCache;
    bytesFromNear += other.bytesFromNear;
    bytesFromFar += other.bytesFromFar;
    bytesFromDisk += other.bytesFromDisk;
    cacheBytesUsed += other.cacheBytesUsed;
    simSeconds += other.simSeconds;
    diskSeconds += other.diskSeconds;
}

double
ShardCounters::hitRate() const
{
    // Zero lookups define a 0.0 hit rate (not NaN): an untouched
    // store has not demonstrated any hit. Pinned by
    // tests/test_store.cc (StoreEdgeCases).
    return lookups > 0
               ? static_cast<double>(hits) / static_cast<double>(lookups)
               : 0.0;
}

double
StoreStats::costPercentile(double p) const
{
    // Empty histogram -> 0.0 (no demand fetch has a defined cost
    // yet). Pinned by tests/test_store.cc (StoreEdgeCases).
    return percentileOfCountMap(costHistogram, p);
}

double
StoreStats::diskCostPercentile(double p) const
{
    return percentileOfCountMap(diskSecondsHistogram, p);
}

EmbeddingStore::EmbeddingStore(StoreConfig config)
    : config_(config)
{
    RECSTACK_CHECK(config_.numShards >= 1,
                   "store needs at least one shard");
    RECSTACK_CHECK(config_.nearTierFraction >= 0.0 &&
                       config_.nearTierFraction <= 1.0,
                   "nearTierFraction must be in [0, 1]");
    farTierDiskActive_ = config_.farTier == FarTierKind::kDisk &&
                         !diskTierDisabledByEnv();
    shards_.reserve(static_cast<size_t>(config_.numShards));
    for (int s = 0; s < config_.numShards; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->cache = std::make_unique<RowCache>(
            config_.policy, config_.cacheBytesPerShard);
        if (farTierDiskActive_) {
            // Promotion targets use CLOCK: evicting (demoting) a
            // promoted row is free — the disk copy is authoritative.
            shard->promoted = std::make_unique<RowCache>(
                CachePolicy::kClock,
                config_.disk.promotedBytesPerShard);
        }
        shards_.push_back(std::move(shard));
    }
}

EmbeddingStore::~EmbeddingStore()
{
    {
        std::lock_guard<std::mutex> lock(prefetchMu_);
        prefetchStop_ = true;
    }
    prefetchCv_.notify_all();
    if (prefetchThread_.joinable()) {
        prefetchThread_.join();
    }
    diskTier_.reset();     // unlinks the page file (unless keepFile)
    diskBuilder_.reset();  // abandoned build unlinks too
    if (ownsDiskDir_) {
        ::rmdir(diskDir_.c_str());  // fails harmlessly if non-empty
    }
}

int
EmbeddingStore::registerTable(const std::string& name, TableInfo info,
                              Tensor data)
{
    RECSTACK_CHECK(tableByName_.count(name) == 0,
                   "store already owns a table named '" << name << "'");
    RECSTACK_CHECK(info.rows > 0 && info.dim > 0,
                   "table '" << name << "' needs positive rows and dim");
    info.name = name;
    info.nearRows = std::min<int64_t>(
        info.rows,
        static_cast<int64_t>(std::ceil(
            config_.nearTierFraction * static_cast<double>(info.rows))));
    maxDim_ = std::max(maxDim_, info.dim);
    const int id = static_cast<int>(tables_.size());

    if (farTierDiskActive_ && info.materialized &&
        info.nearRows < info.rows) {
        RECSTACK_CHECK(!diskFinalized_.load(std::memory_order_acquire),
                       "disk-tier stores must receive every table "
                       "before the first lookup (the learned index "
                       "is built once); cannot add '"
                           << name << "' now");
        if (diskBuilder_ == nullptr) {
            diskDir_ = resolveDiskDir(config_.disk.dir, &ownsDiskDir_);
            static std::atomic<uint64_t> seq{0};
            const std::string path =
                diskDir_ + "/store_" + std::to_string(::getpid()) +
                "_" + std::to_string(seq.fetch_add(1)) + ".pages";
            DiskTierConfig dc;
            dc.pageBytes = config_.disk.pageBytes;
            dc.bufferPages = config_.disk.bufferPages;
            dc.directIO = config_.disk.directIO;
            dc.keepFile = config_.disk.keepFile;
            dc.spline.maxError = config_.disk.splineMaxError;
            dc.spline.radixBits = config_.disk.splineRadixBits;
            diskBuilder_ =
                std::make_unique<DiskTier::Builder>(path, dc);
        }
        // Spill the cold tail to the page file and keep only the
        // near head resident — this is what lets tables larger than
        // the near tier actually be served.
        diskBuilder_->beginTable(id, info.dim);
        const float* src = data.data<float>();
        for (int64_t row = info.nearRows; row < info.rows; ++row) {
            diskBuilder_->appendRow(row, src + row * info.dim);
        }
        Tensor near_head({info.nearRows, info.dim});
        if (info.nearRows > 0) {
            std::memcpy(near_head.data<float>(), src,
                        static_cast<size_t>(info.nearRows * info.dim) *
                            sizeof(float));
        }
        data = std::move(near_head);
    }

    Table t;
    t.info = std::move(info);
    t.data = std::move(data);
    tables_.push_back(std::move(t));
    tableByName_[name] = id;
    return id;
}

int
EmbeddingStore::addTable(const std::string& name, Tensor data)
{
    RECSTACK_CHECK(data.rank() == 2 && data.dtype() == DType::kFloat32,
                   "store table '" << name << "' must be 2-D float");
    RECSTACK_CHECK(data.materialized(),
                   "addTable needs a materialized tensor; use "
                   "declareTable for shape-only stacks");
    TableInfo info;
    info.rows = data.dim(0);
    info.dim = data.dim(1);
    info.materialized = true;
    return registerTable(name, std::move(info), std::move(data));
}

int
EmbeddingStore::declareTable(const std::string& name, int64_t rows,
                             int64_t dim)
{
    TableInfo info;
    info.rows = rows;
    info.dim = dim;
    info.materialized = false;
    return registerTable(name, std::move(info),
                         Tensor::shapeOnly({rows, dim}));
}

int
EmbeddingStore::tableId(const std::string& name) const
{
    auto it = tableByName_.find(name);
    return it == tableByName_.end() ? -1 : it->second;
}

const EmbeddingStore::TableInfo&
EmbeddingStore::tableInfo(int table) const
{
    RECSTACK_CHECK(table >= 0 &&
                       table < static_cast<int>(tables_.size()),
                   "table id " << table << " out of range");
    return tables_[static_cast<size_t>(table)].info;
}

size_t
EmbeddingStore::rowShard(int table, int64_t row, size_t num_shards)
{
    // Offsetting by the table id decorrelates the Zipf heads of
    // co-stored tables (all hot at row 0) across shards.
    return static_cast<size_t>(
        (static_cast<uint64_t>(row) + static_cast<uint64_t>(table)) %
        static_cast<uint64_t>(num_shards));
}

size_t
EmbeddingStore::shardOf(int table, int64_t row) const
{
    return rowShard(table, row,
                    static_cast<size_t>(config_.numShards));
}

void
EmbeddingStore::startPrefetchThreadLocked()
{
    if (!prefetchThread_.joinable()) {
        prefetchThread_ = std::thread([this] { prefetchLoop(); });
    }
}

void
EmbeddingStore::ensureDiskReady()
{
    if (!farTierDiskActive_ ||
        diskFinalized_.load(std::memory_order_acquire)) {
        return;
    }
    std::call_once(diskOnce_, [this] {
        if (diskBuilder_ != nullptr) {
            diskTier_ = diskBuilder_->finish();
            diskBuilder_.reset();
        }
        for (auto& shard : shards_) {
            shard->scratch.resize(static_cast<size_t>(maxDim_));
        }
        if (diskTier_ != nullptr) {
            // The existing prefetch thread doubles as the
            // promotion/demotion worker.
            std::lock_guard<std::mutex> lock(prefetchMu_);
            startPrefetchThreadLocked();
        }
        diskFinalized_.store(true, std::memory_order_release);
    });
}

const float*
EmbeddingStore::fetchRowLocked(const Table& t, int table, int64_t row,
                               Shard& shard)
{
    const uint64_t row_bytes =
        static_cast<uint64_t>(t.info.dim) * sizeof(float);
    ++shard.counters.lookups;
    const uint64_t key = rowKey(table, row);
    const float* cached = shard.cache->find(key);
    if (cached != nullptr) {
        ++shard.counters.hits;
        shard.counters.bytesFromCache += row_bytes;
        const double cost = config_.cacheHitLatencySeconds;
        shard.counters.simSeconds += cost;
        ++shard.costs[cost];
        return cached;
    }
    RECSTACK_CHECK(t.info.materialized,
                   "lookup on declared-only store table '"
                       << t.info.name << "'");
    if (row < t.info.nearRows) {
        const float* src = t.data.data<float>() + row * t.info.dim;
        ++shard.counters.nearFetches;
        shard.counters.bytesFromNear += row_bytes;
        const double cost = fetchCost(config_.nearLatencySeconds,
                                      config_.nearBandwidthGBs,
                                      row_bytes);
        shard.counters.simSeconds += cost;
        ++shard.costs[cost];
        shard.cache->insert(key, src, row_bytes,
                            &shard.counters.evictions);
        return src;
    }
    if (farTierDiskActive_) {
        // Promoted slab: a DRAM copy of a hot disk row. Charged as a
        // near fetch — it is the near tier for disk-resident rows.
        const float* prom = shard.promoted->find(key);
        if (prom != nullptr) {
            ++shard.counters.nearFetches;
            shard.counters.bytesFromNear += row_bytes;
            const double cost = fetchCost(config_.nearLatencySeconds,
                                          config_.nearBandwidthGBs,
                                          row_bytes);
            shard.counters.simSeconds += cost;
            ++shard.costs[cost];
            shard.cache->insert(key, prom, row_bytes,
                                &shard.counters.evictions);
            return prom;
        }
        RECSTACK_CHECK(diskTier_ != nullptr,
                       "disk fetch before the tier was finalized");
        const auto t0 = std::chrono::steady_clock::now();
        const bool ok =
            diskTier_->readRow(key, shard.scratch.data());
        const double dt = secondsSince(t0);
        RECSTACK_CHECK(ok, "row " << row << " of table '"
                                  << t.info.name
                                  << "' missing from the disk tier");
        ++shard.counters.diskFetches;
        shard.counters.bytesFromDisk += row_bytes;
        shard.counters.diskSeconds += dt;
        ++shard.diskCosts[diskCostBucket(dt)];
        if (config_.disk.promoteThreshold > 0) {
            uint32_t& h =
                shard.hotness[key & (kHotnessSlots - 1)];
            if (++h == config_.disk.promoteThreshold) {
                if (shard.promoRingSize < kPromoRingSlots) {
                    shard.promoRing[shard.promoRingSize++] = key;
                    promoPending_.store(true,
                                        std::memory_order_release);
                    prefetchCv_.notify_one();
                } else {
                    --h;  // ring full: retry on the next fetch
                }
            }
        }
        shard.cache->insert(key, shard.scratch.data(), row_bytes,
                            &shard.counters.evictions);
        return shard.scratch.data();
    }
    // Simulated far tier: the cold tail stays in DRAM and the fetch
    // is charged modeled cost — fully deterministic.
    const float* src = t.data.data<float>() + row * t.info.dim;
    ++shard.counters.farFetches;
    shard.counters.bytesFromFar += row_bytes;
    const double cost = fetchCost(config_.farLatencySeconds,
                                  config_.farBandwidthGBs, row_bytes);
    shard.counters.simSeconds += cost;
    ++shard.costs[cost];
    shard.cache->insert(key, src, row_bytes, &shard.counters.evictions);
    return src;
}

void
EmbeddingStore::lookupSum(int table, const int64_t* indices,
                          const int64_t* offsets, int64_t b_lo,
                          int64_t b_hi, float* out, const float* weights)
{
    ensureDiskReady();
    const Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    const int64_t dim = t.info.dim;
    RECSTACK_SPAN("store.lookup_sum",
                  {{"table", table},
                   {"rows", offsets[b_hi] - offsets[b_lo]}});
    for (int64_t b = b_lo; b < b_hi; ++b) {
        float* yrow = out + b * dim;
        for (int64_t d = 0; d < dim; ++d) {
            yrow[d] = 0.0f;
        }
        for (int64_t p = offsets[b]; p < offsets[b + 1]; ++p) {
            const int64_t row = indices[p];
            Shard& shard = *shards_[shardOf(table, row)];
            std::lock_guard<std::mutex> lock(shard.mu);
            const float* src = fetchRowLocked(t, table, row, shard);
            if (weights != nullptr) {
                const float scale = weights[p];
                for (int64_t d = 0; d < dim; ++d) {
                    yrow[d] += scale * src[d];
                }
            } else {
                for (int64_t d = 0; d < dim; ++d) {
                    yrow[d] += src[d];
                }
            }
        }
    }
}

void
EmbeddingStore::lookupGather(int table, const int64_t* indices,
                             int64_t lo, int64_t hi, float* out)
{
    ensureDiskReady();
    const Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    const int64_t dim = t.info.dim;
    RECSTACK_SPAN("store.gather", {{"table", table}, {"rows", hi - lo}});
    for (int64_t i = lo; i < hi; ++i) {
        const int64_t row = indices[i];
        float* dst = out + i * dim;
        Shard& shard = *shards_[shardOf(table, row)];
        std::lock_guard<std::mutex> lock(shard.mu);
        const float* src = fetchRowLocked(t, table, row, shard);
        std::memcpy(dst, src,
                    static_cast<size_t>(dim) * sizeof(float));
    }
}

void
EmbeddingStore::update(int table, int64_t row, const float* values)
{
    ensureDiskReady();
    Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    RECSTACK_CHECK(t.info.materialized,
                   "update on declared-only store table '"
                       << t.info.name << "'");
    RECSTACK_CHECK(row >= 0 && row < t.info.rows,
                   "update row " << row << " out of range for '"
                                 << t.info.name << "'");
    const size_t row_bytes =
        static_cast<size_t>(t.info.dim) * sizeof(float);
    Shard& shard = *shards_[shardOf(table, row)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint64_t key = rowKey(table, row);
    // Write-through under the same lock readers of this row take, so
    // a reader sees either the old or the new payload, never a blend,
    // and any cached copy is refreshed before the lock is released.
    if (farTierDiskActive_ && row >= t.info.nearRows) {
        RECSTACK_CHECK(diskTier_ != nullptr &&
                           diskTier_->writeRow(key, values),
                       "disk write-through failed for row "
                           << row << " of '" << t.info.name << "'");
        shard.promoted->refresh(key, values, row_bytes);
    } else {
        std::memcpy(t.data.data<float>() + row * t.info.dim, values,
                    row_bytes);
    }
    shard.cache->refresh(key, values, row_bytes);
    ++shard.counters.updates;
}

void
EmbeddingStore::warmRow(int table, int64_t row)
{
    const Table& t = tables_[static_cast<size_t>(
        static_cast<uint64_t>(table))];
    if (!t.info.materialized || row < 0 || row >= t.info.rows) {
        return;
    }
    const uint64_t row_bytes =
        static_cast<uint64_t>(t.info.dim) * sizeof(float);
    Shard& shard = *shards_[shardOf(table, row)];
    std::lock_guard<std::mutex> lock(shard.mu);
    const uint64_t key = rowKey(table, row);
    if (shard.cache->find(key) != nullptr) {
        return;  // already hot
    }
    const float* src = nullptr;
    if (farTierDiskActive_ && row >= t.info.nearRows) {
        if (diskTier_ == nullptr || shard.scratch.empty()) {
            return;  // tier not finalized yet; demand path will
        }
        const float* prom = shard.promoted->find(key);
        if (prom != nullptr) {
            src = prom;
        } else if (diskTier_->readRow(key, shard.scratch.data())) {
            src = shard.scratch.data();
        } else {
            return;
        }
    } else {
        src = t.data.data<float>() + row * t.info.dim;
    }
    shard.cache->insert(key, src, row_bytes,
                        &shard.counters.evictions);
    ++shard.counters.prefetchedRows;
    // Prefetch fetch time is overlapped with compute, so it is not
    // charged to demand simSeconds / the cost histogram.
}

void
EmbeddingStore::prefetch(int table, const int64_t* indices,
                         int64_t count)
{
    ensureDiskReady();
    for (int64_t i = 0; i < count; ++i) {
        warmRow(table, indices[i]);
    }
}

void
EmbeddingStore::prefetchAsync(int table, std::vector<int64_t> indices)
{
    ensureDiskReady();
    // Coalesce duplicates before queueing: a batch's index stream
    // repeats hot rows heavily, and each warmRow pays a shard-lock
    // acquisition — warming a row once per task is enough.
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()),
                  indices.end());
    std::unique_lock<std::mutex> lock(prefetchMu_);
    startPrefetchThreadLocked();
    prefetchQueue_.push_back(PrefetchTask{table, std::move(indices)});
    lock.unlock();
    prefetchCv_.notify_one();
}

void
EmbeddingStore::servicePromotions()
{
    // Clear the pending flag BEFORE draining the rings: a push that
    // races with the drain re-raises it, so nothing is ever lost.
    promoPending_.store(false, std::memory_order_relaxed);
    std::array<uint64_t, kPromoRingSlots> pending;
    for (auto& shard_ptr : shards_) {
        Shard& shard = *shard_ptr;
        size_t n = 0;
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            n = shard.promoRingSize;
            std::copy_n(shard.promoRing.begin(), n, pending.begin());
            shard.promoRingSize = 0;
        }
        for (size_t i = 0; i < n; ++i) {
            const uint64_t key = pending[i];
            const int table = static_cast<int>(key >> 40);
            const Table& t =
                tables_[static_cast<size_t>(table)];
            const size_t row_bytes =
                static_cast<size_t>(t.info.dim) * sizeof(float);
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.hotness[key & (kHotnessSlots - 1)] = 0;
            if (shard.promoted->find(key) != nullptr) {
                continue;  // already promoted
            }
            if (!diskTier_->readRow(key, shard.scratch.data())) {
                continue;
            }
            // CLOCK evictions of the slab are the demotions; the
            // disk copy is authoritative, so nothing is written.
            shard.promoted->insert(key, shard.scratch.data(),
                                   row_bytes,
                                   &shard.counters.demotedRows);
            ++shard.counters.promotedRows;
        }
    }
}

void
EmbeddingStore::prefetchLoop()
{
    using namespace std::chrono_literals;
    for (;;) {
        PrefetchTask task;
        bool has_task = false;
        bool do_promo = false;
        {
            std::unique_lock<std::mutex> lock(prefetchMu_);
            const auto ready = [this] {
                return prefetchStop_ || !prefetchQueue_.empty() ||
                       (farTierDiskActive_ &&
                        promoPending_.load(
                            std::memory_order_acquire));
            };
            if (farTierDiskActive_) {
                // Timed wait: promotion work can arrive without a
                // reliably-paired notify (the demand path signals
                // outside this mutex), so sweep periodically.
                prefetchCv_.wait_for(lock, 50ms, ready);
            } else {
                prefetchCv_.wait(lock, ready);
            }
            if (prefetchStop_ && prefetchQueue_.empty()) {
                return;  // stop requested with nothing pending
            }
            if (!prefetchQueue_.empty()) {
                task = std::move(prefetchQueue_.front());
                prefetchQueue_.pop_front();
                prefetchBusy_ = true;
                has_task = true;
            }
            if (farTierDiskActive_ &&
                promoPending_.load(std::memory_order_acquire)) {
                promoBusy_ = true;
                do_promo = true;
            }
            if (!has_task && !do_promo) {
                continue;  // timed out with nothing to do
            }
        }
        if (has_task) {
            for (int64_t row : task.indices) {
                warmRow(task.table, row);
            }
        }
        if (do_promo) {
            servicePromotions();
        }
        {
            std::lock_guard<std::mutex> lock(prefetchMu_);
            prefetchBusy_ = false;
            promoBusy_ = false;
        }
        prefetchIdleCv_.notify_all();
    }
}

void
EmbeddingStore::drainPrefetch()
{
    std::unique_lock<std::mutex> lock(prefetchMu_);
    prefetchIdleCv_.wait(lock, [this] {
        return prefetchQueue_.empty() && !prefetchBusy_ &&
               !promoBusy_ &&
               !promoPending_.load(std::memory_order_acquire);
    });
}

StoreStats
EmbeddingStore::stats() const
{
    StoreStats out;
    out.perShard.reserve(shards_.size());
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        ShardCounters c = shard->counters;
        c.cacheBytesUsed = shard->cache->bytesUsed();
        out.perShard.push_back(c);
        out.total.accumulate(c);
        for (const auto& [cost, count] : shard->costs) {
            out.costHistogram[cost] += count;
        }
        for (const auto& [cost, count] : shard->diskCosts) {
            out.diskSecondsHistogram[cost] += count;
        }
    }
    out.diskTierActive = farTierDiskActive_;
    if (diskTier_ != nullptr) {
        out.diskTier = diskTier_->stats();
    }
    return out;
}

void
EmbeddingStore::resetStats()
{
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->counters = ShardCounters{};
        shard->costs.clear();
        shard->diskCosts.clear();
    }
    if (diskTier_ != nullptr) {
        diskTier_->resetStats();
    }
}

uint64_t
EmbeddingStore::tableBytes() const
{
    // Under a disk far tier each materialized table was shrunk to
    // its near head at registration, so byteSize() is already the
    // DRAM-resident portion only.
    uint64_t n = 0;
    for (const Table& t : tables_) {
        if (t.info.materialized) {
            n += static_cast<uint64_t>(t.data.byteSize());
        }
    }
    return n;
}

uint64_t
EmbeddingStore::cacheBytesUsed() const
{
    uint64_t n = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        n += shard->cache->bytesUsed();
    }
    return n;
}

uint64_t
EmbeddingStore::cacheCapacityBytes() const
{
    return static_cast<uint64_t>(config_.numShards) *
           static_cast<uint64_t>(config_.cacheBytesPerShard);
}

uint64_t
EmbeddingStore::promotedBytesUsed() const
{
    uint64_t n = 0;
    for (const auto& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        if (shard->promoted != nullptr) {
            n += shard->promoted->bytesUsed();
        }
    }
    return n;
}

uint64_t
EmbeddingStore::diskFileBytes() const
{
    return diskTier_ != nullptr ? diskTier_->stats().fileBytes : 0;
}

uint64_t
EmbeddingStore::residentBytes() const
{
    uint64_t n = tableBytes() + cacheBytesUsed() + promotedBytesUsed();
    if (diskTier_ != nullptr) {
        n += diskTier_->stats().frameBytes;
    }
    return n;
}

double
EmbeddingStore::expectedHitRate(int table, double zipf) const
{
    const TableInfo& info = tableInfo(table);
    const uint64_t row_bytes =
        static_cast<uint64_t>(info.dim) * sizeof(float);
    const uint64_t share =
        cacheCapacityBytes() / std::max<size_t>(1, tables_.size());
    const uint64_t cache_rows = share / std::max<uint64_t>(1, row_bytes);
    const ZipfSampler sampler(static_cast<uint64_t>(info.rows), zipf);
    return sampler.cdf(cache_rows);
}

double
EmbeddingStore::farTierFraction(int table, double zipf) const
{
    const TableInfo& info = tableInfo(table);
    const uint64_t row_bytes =
        static_cast<uint64_t>(info.dim) * sizeof(float);
    const uint64_t share =
        cacheCapacityBytes() / std::max<size_t>(1, tables_.size());
    const uint64_t cache_rows = share / std::max<uint64_t>(1, row_bytes);
    // Far fetches are lookups past both the cached head and the
    // near-tier boundary.
    const uint64_t covered = std::max<uint64_t>(
        cache_rows, static_cast<uint64_t>(info.nearRows));
    const ZipfSampler sampler(static_cast<uint64_t>(info.rows), zipf);
    return 1.0 - sampler.cdf(covered);
}

bool
EmbeddingStore::disabledByEnv()
{
    return envFlagSet("RECSTACK_DISABLE_STORE");
}

bool
EmbeddingStore::diskTierDisabledByEnv()
{
    return envFlagSet("RECSTACK_DISABLE_DISK_TIER");
}

void
exportStoreStats(const StoreStats& stats)
{
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("store.lookups").add(stats.total.lookups);
    reg.counter("store.hits").add(stats.total.hits);
    reg.counter("store.near_fetches").add(stats.total.nearFetches);
    reg.counter("store.far_fetches").add(stats.total.farFetches);
    reg.counter("store.disk_fetches").add(stats.total.diskFetches);
    reg.counter("store.evictions").add(stats.total.evictions);
    reg.counter("store.promoted_rows").add(stats.total.promotedRows);
    reg.counter("store.demoted_rows").add(stats.total.demotedRows);
    reg.counter("store.bytes_from_disk")
        .add(stats.total.bytesFromDisk);
    reg.gauge("store.cache_bytes_used")
        .set(static_cast<double>(stats.total.cacheBytesUsed));
    reg.gauge("store.disk_seconds").set(stats.total.diskSeconds);
}

}  // namespace recstack
