#ifndef RECSTACK_STORE_DISK_TIER_H_
#define RECSTACK_STORE_DISK_TIER_H_

/**
 * @file
 * Persistent page-based far tier of the embedding store.
 *
 * Production embedding tables outgrow DRAM; the EmbedDB-style answer
 * is a single preallocated file of fixed-size pages, a bounded page
 * buffer pool, and a learned index locating a key's page — no
 * dynamic allocation anywhere on the lookup path. DiskTier is that
 * design:
 *
 *  - **Page file layout**: page 0 is the fixed header (magic, page
 *    size, table/key/page counts), followed by each table's row
 *    payloads packed into per-table data-page regions (rowsPerPage =
 *    pageBytes / rowBytes; rows never span pages), then the sorted
 *    64-bit (table, row) key array packed into key pages, then the
 *    per-table records (own pages, so a model with many tables never
 *    outgrows the header).
 *    The file is written once by DiskTier::Builder in ascending key
 *    order and reopened read-write for serving — reopening after a
 *    crash only needs the file (DiskTier::open rebuilds the spline
 *    from the persisted keys; tests/test_store_disk.cc smoke).
 *  - **Learned index**: a radix-spline (store/spline_index.h) maps a
 *    key to its global ordinal, which per-table records turn into
 *    (page, slot). A binary-search reference path is always
 *    available (readRowBinarySearch) and is verified equivalent.
 *  - **Page buffer pool**: `bufferPages` frames in one aligned
 *    preallocated slab, CLOCK second-chance replacement, a linear
 *    frame map (the pool is small by design). A pool hit costs a
 *    frame scan + memcpy; a miss reads the page via pread (optional
 *    O_DIRECT, falling back when the filesystem refuses it) or
 *    memcpy from an mmap of the file (the default — the kernel page
 *    cache then backs cold pages). Load time is **measured** wall
 *    clock, not modeled: DiskTierStats::readSeconds is real I/O.
 *
 * Thread safety: one internal mutex serializes pool and stats
 * access; EmbeddingStore shards acquire it after their own shard
 * lock (strict shard → tier order, no inverse).
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/spline_index.h"

namespace recstack {

/** Knobs of one disk tier instance. */
struct DiskTierConfig {
    /// Fixed page size; header, key and data pages all use it. Must
    /// be a power of two >= 512 (O_DIRECT alignment).
    size_t pageBytes = 4096;
    /// Bounded buffer pool capacity in frames (CLOCK replacement).
    size_t bufferPages = 64;
    /// Serve page loads with pread on an O_DIRECT descriptor instead
    /// of the default mmap; falls back to plain pread where the
    /// filesystem rejects O_DIRECT (e.g. tmpfs).
    bool directIO = false;
    /// Keep the page file on destruction (crash/reopen tests); by
    /// default the tier unlinks its file.
    bool keepFile = false;
    /// Learned-index build knobs.
    SplineIndexConfig spline;
};

/** Counters of one disk tier (measured, not modeled). */
struct DiskTierStats {
    uint64_t rowReads = 0;       ///< readRow calls served
    uint64_t rowWrites = 0;      ///< writeRow calls served
    uint64_t bytesRead = 0;      ///< payload bytes returned
    uint64_t pageHits = 0;       ///< served from the buffer pool
    uint64_t pageLoads = 0;      ///< pool misses -> file reads
    uint64_t pageEvictions = 0;  ///< CLOCK victims
    double readSeconds = 0.0;    ///< wall clock inside page loads
    uint64_t numDataPages = 0;
    uint64_t fileBytes = 0;
    uint64_t frameBytes = 0;     ///< resident buffer pool slab
    bool directIOActive = false; ///< O_DIRECT actually in effect
    bool mmapActive = false;
    SplineIndexStats spline;
};

/** One on-disk page store; build with Builder or reopen with open(). */
class DiskTier
{
  public:
    /**
     * Sequential writer of a fresh page file. Tables must be added
     * in ascending table-id order and rows in ascending row order,
     * which makes the global (table, row) key stream sorted — the
     * layout the spline index and the page regions require.
     */
    class Builder
    {
      public:
        Builder(std::string path, DiskTierConfig config = {});
        ~Builder();

        Builder(const Builder&) = delete;
        Builder& operator=(const Builder&) = delete;

        /** Open a region for `table`'s cold rows of width dim. */
        void beginTable(int table, int64_t dim);
        /** Append one cold row (ascending within the table). */
        void appendRow(int64_t row, const float* payload);
        /** Finalize header + index and open the tier for serving. */
        std::unique_ptr<DiskTier> finish();

      private:
        struct PendingTable {
            int table = 0;
            int64_t dim = 0;
            uint64_t coldRows = 0;
            uint64_t firstKeyIndex = 0;
            uint64_t firstDataPage = 0;
        };

        void flushDataPage();

        std::string path_;
        DiskTierConfig config_;
        int fd_ = -1;
        std::vector<PendingTable> tables_;
        std::vector<uint64_t> keys_;
        std::vector<uint8_t> pageBuf_;
        size_t pageFill_ = 0;        ///< bytes used in pageBuf_
        uint64_t nextDataPage_ = 0;  ///< relative to data region start
        bool finished_ = false;
    };

    /** Reopen an existing page file (e.g. after a crash). */
    static std::unique_ptr<DiskTier> open(const std::string& path,
                                          DiskTierConfig config = {});

    ~DiskTier();

    DiskTier(const DiskTier&) = delete;
    DiskTier& operator=(const DiskTier&) = delete;

    /**
     * Copy the payload of (table, row) key into dst (rowBytes(key's
     * table) bytes). Returns false when the key is not stored. No
     * heap allocation; the page comes from the buffer pool.
     */
    bool readRow(uint64_t key, float* dst);

    /** readRow through the binary-search reference index. */
    bool readRowBinarySearch(uint64_t key, float* dst);

    /**
     * Write a row payload through to the file (and refresh any
     * pooled copy of its page). Returns false when the key is not
     * stored. Durable w.r.t. reopen after the destructor runs.
     */
    bool writeRow(uint64_t key, const float* src);

    bool contains(uint64_t key) const;
    /** Payload width (floats) of a table, or 0 if absent. */
    int64_t tableDim(int table) const;
    /** Count of rows stored for a table. */
    uint64_t tableRows(int table) const;

    const SplineIndex& index() const { return *index_; }
    const std::string& path() const { return path_; }

    DiskTierStats stats() const;
    void resetStats();

  private:
    struct TableRecord {
        int table = 0;
        int64_t dim = 0;
        uint64_t coldRows = 0;
        uint64_t firstKeyIndex = 0;
        uint64_t firstDataPage = 0;  ///< absolute page number
    };
    struct Frame {
        uint64_t page = UINT64_MAX;  ///< UINT64_MAX = empty
        bool referenced = false;
    };

    DiskTier() = default;

    void setupPool();
    void mapOrOpen(bool fresh_file);
    const TableRecord* recordFor(uint64_t key, size_t ordinal) const;
    /// Frame index holding `page`, loading it if needed. Pool mutex
    /// must be held.
    size_t fetchPageLocked(uint64_t page);
    void loadPageLocked(uint64_t page, uint8_t* frame);
    bool readRowIndexed(uint64_t key, size_t ordinal, float* dst);

    std::string path_;
    DiskTierConfig config_;
    int fd_ = -1;
    uint8_t* map_ = nullptr;     ///< mmap base (mmap mode)
    size_t fileBytes_ = 0;
    bool directIOActive_ = false;
    uint64_t numDataPages_ = 0;

    std::vector<TableRecord> tables_;
    std::unique_ptr<SplineIndex> index_;

    mutable std::mutex mu_;      ///< pool + stats
    std::vector<Frame> frames_;
    uint8_t* pool_ = nullptr;    ///< aligned slab, bufferPages frames
    size_t clockHand_ = 0;
    DiskTierStats stats_;

    friend class Builder;
};

}  // namespace recstack

#endif  // RECSTACK_STORE_DISK_TIER_H_
