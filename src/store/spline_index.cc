#include "store/spline_index.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace recstack {

SplineIndex::SplineIndex(std::vector<uint64_t> sorted_keys,
                         SplineIndexConfig config)
    : config_(config), keys_(std::move(sorted_keys))
{
    RECSTACK_CHECK(config_.maxError >= 1,
                   "spline maxError must be at least 1");
    RECSTACK_CHECK(config_.radixBits >= 1 && config_.radixBits <= 30,
                   "spline radixBits must be in [1, 30]");
    for (size_t i = 1; i < keys_.size(); ++i) {
        RECSTACK_CHECK(keys_[i - 1] < keys_[i],
                       "spline keys must be strictly increasing (key["
                           << i << "] = " << keys_[i] << ")");
    }
    buildSpline();
    buildRadixTable();

    // Measure the true interpolation error over every key; the lookup
    // search window uses the measured value, so find() stays exact
    // even if floating-point slope arithmetic leaks a slot or two
    // past the configured corridor.
    for (size_t i = 0; i < keys_.size(); ++i) {
        const size_t p = predict(keys_[i]);
        const size_t err = p > i ? p - i : i - p;
        maxErrorObserved_ = std::max(maxErrorObserved_, err);
    }
}

void
SplineIndex::buildSpline()
{
    knots_.clear();
    const size_t n = keys_.size();
    if (n == 0) {
        return;
    }
    knots_.push_back(Knot{keys_[0], 0});
    if (n == 1) {
        return;
    }

    // Greedy spline corridor (RadixSpline / EmbedDB): keep the widest
    // slope interval [lo, hi] through the current base knot that
    // passes within +-maxError of every point seen since; when a
    // point falls outside, the previous point becomes a knot and the
    // corridor restarts from it.
    const double err = static_cast<double>(config_.maxError);
    uint64_t base_x = keys_[0];
    double base_y = 0.0;
    uint64_t prev_x = keys_[0];
    double prev_y = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    bool corridor_open = false;

    for (size_t i = 1; i < n; ++i) {
        const uint64_t x = keys_[i];
        const double y = static_cast<double>(i);
        const double dx = static_cast<double>(x - base_x);
        const double slope_hi = (y + err - base_y) / dx;
        const double slope_lo = (y - err - base_y) / dx;
        if (!corridor_open) {
            lo = slope_lo;
            hi = slope_hi;
            corridor_open = true;
        } else {
            const double slope = (y - base_y) / dx;
            if (slope < lo || slope > hi) {
                // Previous point is the farthest the corridor
                // reaches; emit it and restart from there.
                knots_.push_back(
                    Knot{prev_x, static_cast<size_t>(prev_y)});
                base_x = prev_x;
                base_y = prev_y;
                const double ndx = static_cast<double>(x - base_x);
                lo = (y - err - base_y) / ndx;
                hi = (y + err - base_y) / ndx;
            } else {
                hi = std::min(hi, slope_hi);
                lo = std::max(lo, slope_lo);
            }
        }
        prev_x = x;
        prev_y = y;
    }
    knots_.push_back(Knot{keys_[n - 1], n - 1});
}

void
SplineIndex::buildRadixTable()
{
    const size_t n = keys_.size();
    if (n == 0) {
        radix_.clear();
        shiftBits_ = 0;
        radixBits_ = 0;
        return;
    }
    // Clamp the table so it never exceeds ~4 entries per key.
    radixBits_ = config_.radixBits;
    while (radixBits_ > 1 &&
           (size_t{1} << radixBits_) > 4 * std::max<size_t>(n, 1)) {
        --radixBits_;
    }
    const uint64_t range = keys_.back() - keys_.front();
    const int range_bits =
        range == 0 ? 0 : 64 - std::countl_zero(range);
    shiftBits_ = std::max(0, range_bits - radixBits_);

    const size_t table = size_t{1} << radixBits_;
    radix_.assign(table + 1, 0);
    size_t next = 0;
    for (size_t p = 0; p < table; ++p) {
        while (next < knots_.size() &&
               ((knots_[next].key - keys_.front()) >> shiftBits_) <
                   p) {
            ++next;
        }
        radix_[p] = static_cast<uint32_t>(next);
    }
    radix_[table] = static_cast<uint32_t>(knots_.size());
}

size_t
SplineIndex::predict(uint64_t key) const
{
    const size_t n = keys_.size();
    if (knots_.size() < 2) {
        return 0;
    }
    const uint64_t prefix = (key - keys_.front()) >> shiftBits_;
    const size_t lo_knot =
        radix_[prefix] > 0 ? static_cast<size_t>(radix_[prefix]) - 1
                           : 0;
    const size_t hi_knot = std::min<size_t>(
        knots_.size(), static_cast<size_t>(radix_[prefix + 1]) + 1);
    // Last knot with knot.key <= key inside the radix-narrowed range.
    auto it = std::upper_bound(
        knots_.begin() + static_cast<ptrdiff_t>(lo_knot),
        knots_.begin() + static_cast<ptrdiff_t>(hi_knot), key,
        [](uint64_t k, const Knot& knot) { return k < knot.key; });
    RECSTACK_CHECK(it != knots_.begin() + static_cast<ptrdiff_t>(lo_knot)
                       || lo_knot == 0,
                   "spline radix table missed the segment start");
    const size_t seg =
        it == knots_.begin()
            ? 0
            : static_cast<size_t>(it - knots_.begin()) - 1;
    if (seg + 1 >= knots_.size()) {
        return knots_.back().ordinal;
    }
    const Knot& a = knots_[seg];
    const Knot& b = knots_[seg + 1];
    const double frac =
        static_cast<double>(key - a.key) /
        static_cast<double>(b.key - a.key);
    const double pos =
        static_cast<double>(a.ordinal) +
        frac * static_cast<double>(b.ordinal - a.ordinal);
    const double clamped = std::clamp(
        pos, 0.0, static_cast<double>(n - 1));
    return static_cast<size_t>(std::llround(clamped));
}

size_t
SplineIndex::find(uint64_t key) const
{
    const size_t n = keys_.size();
    if (n == 0 || key < keys_.front() || key > keys_.back()) {
        return kNotFound;
    }
    // The corridor bound holds for present keys; an absent key's
    // insertion point can drift one slot further, so widen by 2.
    const size_t window = maxErrorObserved_ + 2;
    const size_t pos = predict(key);
    const size_t lo = pos > window ? pos - window : 0;
    const size_t hi = std::min(n, pos + window + 1);
    auto it = std::lower_bound(
        keys_.begin() + static_cast<ptrdiff_t>(lo),
        keys_.begin() + static_cast<ptrdiff_t>(hi), key);
    if (it == keys_.end() || *it != key) {
        return kNotFound;
    }
    return static_cast<size_t>(it - keys_.begin());
}

size_t
SplineIndex::findBinarySearch(uint64_t key) const
{
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) {
        return kNotFound;
    }
    return static_cast<size_t>(it - keys_.begin());
}

SplineIndexStats
SplineIndex::stats() const
{
    SplineIndexStats s;
    s.numKeys = keys_.size();
    s.numSegments = knots_.size() > 1 ? knots_.size() - 1 : 0;
    s.radixBits = static_cast<size_t>(radixBits_);
    s.maxErrorBound = config_.maxError;
    s.maxErrorObserved = maxErrorObserved_;
    s.indexBytes =
        knots_.size() * sizeof(Knot) + radix_.size() * sizeof(uint32_t);
    return s;
}

}  // namespace recstack
