#ifndef RECSTACK_STORE_EMBEDDING_STORE_H_
#define RECSTACK_STORE_EMBEDDING_STORE_H_

/**
 * @file
 * Sharded embedding parameter store.
 *
 * Production recommendation models keep GBs of embedding tables behind
 * a parameter-server boundary rather than inside each inference
 * worker; the lookup stream is strongly Zipfian (hot users/items), so
 * a small hot-row cache absorbs most of the traffic while the cold
 * tail lives in cheaper, slower memory (UPMEM/EmbedDB-style tiering).
 * EmbeddingStore reproduces that structure in-process:
 *
 *  - All embedding tables of a model live in one store, row-partitioned
 *    across N shards. Each shard has its own mutex, hot-row cache
 *    (store/row_cache.h, LRU or CLOCK, byte-capacity bound) and
 *    counters, so concurrent ServingEngine workers contend only on
 *    rows that hash to the same shard.
 *  - Backing rows are split into a near tier (resident, DRAM-like) and
 *    a far tier. The far tier comes in two kinds
 *    (StoreConfig::farTier):
 *      * kSimulated (default): cold rows stay in DRAM and every miss
 *        is charged modeled latency + bytes/bandwidth — fully
 *        deterministic, byte-identical to the pre-disk store.
 *      * kDisk: cold rows are REAL — written to a page-based file
 *        (store/disk_tier.h) indexed by a radix-spline learned index
 *        (store/spline_index.h) and dropped from DRAM, so tables
 *        larger than the configured near tier actually serve from
 *        disk. Fetch time is measured wall clock, not modeled, and a
 *        background promotion loop (the prefetch thread) moves rows
 *        whose demand access count crosses a threshold into a
 *        per-shard promoted DRAM slab; the slab's CLOCK evictions are
 *        the demotions (the disk copy is authoritative, so demotion
 *        never writes).
 *  - lookupSum / lookupGather serve batched reads with numerics
 *    bit-identical to reading a dense Workspace blob: cached, near,
 *    promoted and disk copies are all verbatim row payloads and
 *    pooling order is the caller's.
 *  - prefetchAsync warms the cache with the next batch's indices on a
 *    background thread (the classic double-buffered embedding
 *    prefetch), overlapping far-tier fetches with current-batch
 *    compute. Indices are deduplicated per task before queueing.
 *
 * Env hatches: RECSTACK_DISABLE_STORE=1 makes every integration point
 * (ServingEngine, CLI) fall back to per-worker dense table copies;
 * RECSTACK_DISABLE_DISK_TIER=1 forces farTier back to kSimulated; and
 * RECSTACK_STORE_DIR picks the page-file directory (default: a fresh
 * temp dir removed with the store).
 */

#include <array>
#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "store/disk_tier.h"
#include "store/row_cache.h"
#include "store/spline_index.h"
#include "tensor/tensor.h"

namespace recstack {

/** What backs the far tier of an EmbeddingStore. */
enum class FarTierKind {
    kSimulated,  ///< cold rows in DRAM, cost modeled (deterministic)
    kDisk,       ///< cold rows in a page file, cost measured
};

/** Printable far-tier name ("simulated" / "disk"). */
const char* farTierKindName(FarTierKind kind);

/** Disk far-tier knobs (used when StoreConfig::farTier == kDisk). */
struct DiskTierOptions {
    /// Page-file directory; "" resolves RECSTACK_STORE_DIR, then a
    /// fresh mkdtemp dir owned (and removed) by the store.
    std::string dir;
    size_t pageBytes = 4096;
    size_t bufferPages = 64;       ///< CLOCK page-buffer pool frames
    bool directIO = false;         ///< pread/O_DIRECT instead of mmap
    bool keepFile = false;         ///< survive store destruction
    /// Per-shard DRAM budget for rows promoted off the disk tier.
    size_t promotedBytesPerShard = 256u << 10;
    /// Demand fetches of a cold row before the promotion loop copies
    /// it into the promoted slab (0 disables promotion).
    uint32_t promoteThreshold = 4;
    size_t splineMaxError = 32;    ///< learned-index corridor width
    int splineRadixBits = 18;
};

/** Shard / cache / tier knobs of an EmbeddingStore. */
struct StoreConfig {
    /// Row-partition count; also the lock granularity.
    int numShards = 8;
    /// Hot-row cache capacity per shard (bytes of row payload).
    size_t cacheBytesPerShard = 1u << 20;
    /// Replacement policy of every shard cache.
    CachePolicy policy = CachePolicy::kLRU;
    /// Leading fraction of each table's rows resident in the near
    /// tier; the remainder lives in the far tier. The Zipf head is
    /// low row indices, so hot rows are near by construction.
    double nearTierFraction = 1.0;
    /// Cost model: per-row fetch pays tier latency + bytes/bandwidth.
    double cacheHitLatencySeconds = 8e-9;    ///< on-package SRAM-ish
    double nearLatencySeconds = 1.2e-7;      ///< local DRAM row fetch
    double nearBandwidthGBs = 64.0;
    double farLatencySeconds = 2.0e-6;       ///< CXL/NVM/remote-style
    double farBandwidthGBs = 8.0;
    /// Far-tier backing; kSimulated keeps every pre-disk default
    /// byte-identical. RECSTACK_DISABLE_DISK_TIER=1 overrides kDisk.
    FarTierKind farTier = FarTierKind::kSimulated;
    /// Disk-tier knobs (ignored under kSimulated).
    DiskTierOptions disk;
};

/** Counters one shard accumulates under its lock. */
struct ShardCounters {
    uint64_t lookups = 0;        ///< demand row reads
    uint64_t hits = 0;           ///< served from the hot-row cache
    uint64_t nearFetches = 0;    ///< misses served by the near tier
                                 ///  (incl. the promoted DRAM slab)
    uint64_t farFetches = 0;     ///< misses served by the far tier
                                 ///  (simulated kind only)
    uint64_t diskFetches = 0;    ///< misses served by the disk tier
    uint64_t evictions = 0;
    uint64_t updates = 0;
    uint64_t prefetchedRows = 0; ///< rows warmed by prefetch, not demand
    uint64_t promotedRows = 0;   ///< disk rows promoted to the slab
    uint64_t demotedRows = 0;    ///< slab CLOCK evictions (demotions)
    uint64_t bytesFromCache = 0;
    uint64_t bytesFromNear = 0;
    uint64_t bytesFromFar = 0;
    uint64_t bytesFromDisk = 0;
    uint64_t cacheBytesUsed = 0; ///< snapshot at stats() time
    double simSeconds = 0.0;     ///< modeled fetch time, demand reads
    double diskSeconds = 0.0;    ///< MEASURED wall clock in disk reads

    void accumulate(const ShardCounters& other);
    /** Cache hit fraction; defined as 0.0 when lookups == 0. */
    double hitRate() const;
};

/** Aggregated store statistics (stats() snapshot). */
struct StoreStats {
    std::vector<ShardCounters> perShard;
    ShardCounters total;
    /// Modeled per-row demand fetch cost -> occurrence count; the
    /// domain is tiny (one cost per tier per table) so percentiles
    /// are exact.
    std::map<double, uint64_t> costHistogram;
    /// Measured per-row disk fetch seconds, bucketed to powers of
    /// two of a nanosecond so the map stays small.
    std::map<double, uint64_t> diskSecondsHistogram;
    /// Whether the snapshot came from a store with a live disk tier.
    bool diskTierActive = false;
    /// Page/pool/index counters of the disk tier (zero when
    /// inactive or not yet touched).
    DiskTierStats diskTier;

    double hitRate() const { return total.hitRate(); }
    /**
     * Exact p-th percentile (p in [0,1]) of modeled per-row fetch
     * cost. An empty histogram (no demand lookups yet) returns 0.0.
     */
    double costPercentile(double p) const;
    /**
     * p-th percentile of MEASURED per-row disk fetch seconds (bucket
     * upper bounds). Returns 0.0 when no disk fetch happened.
     */
    double diskCostPercentile(double p) const;
};

/**
 * Re-export a StoreStats snapshot's totals into the global
 * MetricsRegistry (store.lookups / store.hits / store.near_fetches /
 * store.far_fetches / store.disk_fetches / store.evictions /
 * store.promoted_rows / store.demoted_rows counters plus the
 * store.cache_bytes_used and store.disk_seconds gauges), so store
 * health shows up in the same snapshot as executor/queue/serving
 * metrics. Counters are cumulative across calls; reset the registry
 * before a measured run.
 */
void exportStoreStats(const StoreStats& stats);

/** Process-wide sharded embedding table store. See file comment. */
class EmbeddingStore
{
  public:
    explicit EmbeddingStore(StoreConfig config = {});
    ~EmbeddingStore();

    EmbeddingStore(const EmbeddingStore&) = delete;
    EmbeddingStore& operator=(const EmbeddingStore&) = delete;

    /** Table metadata. */
    struct TableInfo {
        std::string name;
        int64_t rows = 0;
        int64_t dim = 0;
        int64_t nearRows = 0;      ///< rows [0, nearRows) are near-tier
        bool materialized = false;
    };

    /**
     * Move a materialized [rows, dim] float table into the store.
     * Returns the table id ops use for lookups. Under a disk far
     * tier, rows [nearRows, rows) are spilled to the page file and
     * only the near head stays in DRAM; every table must be added
     * before the first lookup (the learned index is built once).
     */
    int addTable(const std::string& name, Tensor data);

    /**
     * Register table metadata without payload (profile-only stacks):
     * lookups panic, but tableInfo / expectedHitRate / the profile
     * stream split all work.
     */
    int declareTable(const std::string& name, int64_t rows, int64_t dim);

    /** Table id for a blob name, or -1 if this store does not own it. */
    int tableId(const std::string& name) const;
    bool hasTable(const std::string& name) const { return tableId(name) >= 0; }
    const TableInfo& tableInfo(int table) const;
    size_t numTables() const { return tables_.size(); }

    /**
     * Segment-pooled batched read, the store-side half of
     * SparseLengthsSum / SLWS / SLMean: for each output row b in
     * [b_lo, b_hi), zero out[b*dim, (b+1)*dim) then accumulate the
     * rows selected by indices[offsets[b], offsets[b+1]) in ascending
     * order — the identical fp32 order of the dense kernels, so
     * results are bit-identical. `weights`, when non-null, scales
     * each row (SLWS's fused multiply-add order).
     */
    void lookupSum(int table, const int64_t* indices,
                   const int64_t* offsets, int64_t b_lo, int64_t b_hi,
                   float* out, const float* weights = nullptr);

    /** Row-copy batched read (Gather): out[i] = table[indices[i]]. */
    void lookupGather(int table, const int64_t* indices, int64_t lo,
                      int64_t hi, float* out);

    /**
     * Write one row through to the backing table (DRAM or disk page)
     * and refresh any cached/promoted copy, so no reader ever
     * observes the stale payload.
     */
    void update(int table, int64_t row, const float* values);

    /** Synchronously warm the cache with these rows (no demand stats). */
    void prefetch(int table, const int64_t* indices, int64_t count);

    /**
     * Queue the next batch's indices for cache warming on the
     * background prefetch thread (started lazily). Duplicate indices
     * are coalesced per task before queueing, so warm traffic never
     * pays repeated shard-lock acquisitions for the same row.
     */
    void prefetchAsync(int table, std::vector<int64_t> indices);

    /**
     * Block until the async prefetch queue — and, under a disk far
     * tier, any pending promotions — is fully drained.
     */
    void drainPrefetch();

    StoreStats stats() const;
    void resetStats();

    /**
     * Bytes of DRAM-resident backing tables. Under a disk far tier
     * this is only the near heads — the cold tail lives in the page
     * file (diskFileBytes()).
     */
    uint64_t tableBytes() const;
    /** Bytes currently held by the shard caches. */
    uint64_t cacheBytesUsed() const;
    /** Total cache capacity across shards. */
    uint64_t cacheCapacityBytes() const;
    /** Bytes held by the per-shard promoted DRAM slabs (disk tier). */
    uint64_t promotedBytesUsed() const;
    /** Size of the disk tier's page file (0 when inactive). */
    uint64_t diskFileBytes() const;
    /**
     * The store's whole DRAM footprint: near tables + caches +
     * promoted slabs + the disk tier's buffer-pool frames.
     */
    uint64_t residentBytes() const;

    /**
     * Analytical hit-rate expectation for a Zipf(zipf) stream over
     * this table, from the sampler's own CDF: the cache is modeled as
     * holding the hottest rows, with total capacity split evenly
     * across tables. Exact for single-table stores at steady state;
     * an upper-bound approximation under multi-table interleaving.
     */
    double expectedHitRate(int table, double zipf) const;

    /**
     * Expected fraction of lookups served by the far tier (misses
     * past both the cache and the near-tier boundary).
     */
    double farTierFraction(int table, double zipf) const;

    const StoreConfig& config() const { return config_; }

    /**
     * True when the far tier is actually disk-backed: configured
     * kDisk and not overridden by RECSTACK_DISABLE_DISK_TIER.
     */
    bool diskTierActive() const { return farTierDiskActive_; }
    /** The live disk tier, or nullptr before the first lookup /
     *  when inactive. */
    const DiskTier* diskTier() const { return diskTier_.get(); }

    /** True when RECSTACK_DISABLE_STORE is set to a non-zero value. */
    static bool disabledByEnv();
    /** True when RECSTACK_DISABLE_DISK_TIER is set to non-zero. */
    static bool diskTierDisabledByEnv();

    /**
     * The store's row-partition function, exposed so fleet placement
     * (src/fleet/placement.h) assigns embedding rows to nodes with
     * exactly the rule the store shards by: the table-id offset
     * decorrelates the Zipf heads of co-stored tables (all hot at
     * row 0) across partitions. shardOf() delegates here.
     */
    static size_t rowShard(int table, int64_t row, size_t num_shards);

  private:
    /// Slots of the per-shard approximate access-count table; key
    /// collisions conflate rows, which only ever promotes early.
    static constexpr size_t kHotnessSlots = 4096;
    /// Bounded pending-promotion ring per shard (drop-new when full;
    /// a dropped key re-queues on its next demand fetch).
    static constexpr size_t kPromoRingSlots = 256;

    struct Table {
        TableInfo info;
        Tensor data;
    };
    struct Shard {
        mutable std::mutex mu;
        std::unique_ptr<RowCache> cache;
        /// Disk-tier promoted slab (null under kSimulated).
        std::unique_ptr<RowCache> promoted;
        ShardCounters counters;
        std::map<double, uint64_t> costs;
        std::map<double, uint64_t> diskCosts;
        /// Preallocated disk-read row buffer (guarded by mu).
        std::vector<float> scratch;
        std::array<uint32_t, kHotnessSlots> hotness{};
        std::array<uint64_t, kPromoRingSlots> promoRing{};
        size_t promoRingSize = 0;
    };
    struct PrefetchTask {
        int table = 0;
        std::vector<int64_t> indices;
    };

    int registerTable(const std::string& name, TableInfo info,
                      Tensor data);
    size_t shardOf(int table, int64_t row) const;
    /// Returns the row payload (cache copy, backing row, promoted
    /// slab, or per-shard scratch filled from disk), valid while the
    /// shard lock is held; charges stats for a demand read.
    const float* fetchRowLocked(const Table& t, int table, int64_t row,
                                Shard& shard);
    void warmRow(int table, int64_t row);
    void prefetchLoop();
    /// Finalize the disk builder into a servable tier + start the
    /// promotion-capable background thread. Idempotent; called from
    /// every lookup entry point.
    void ensureDiskReady();
    void servicePromotions();
    void startPrefetchThreadLocked();

    StoreConfig config_;
    std::vector<Table> tables_;
    std::map<std::string, int> tableByName_;
    std::vector<std::unique_ptr<Shard>> shards_;

    // Disk far tier (all null/empty under kSimulated).
    bool farTierDiskActive_ = false;
    std::unique_ptr<DiskTier::Builder> diskBuilder_;
    std::unique_ptr<DiskTier> diskTier_;
    std::string diskDir_;
    bool ownsDiskDir_ = false;
    std::once_flag diskOnce_;
    std::atomic<bool> diskFinalized_{false};
    std::atomic<bool> promoPending_{false};
    int64_t maxDim_ = 0;

    std::mutex prefetchMu_;
    std::condition_variable prefetchCv_;
    std::condition_variable prefetchIdleCv_;
    std::deque<PrefetchTask> prefetchQueue_;
    std::thread prefetchThread_;
    bool prefetchBusy_ = false;
    bool promoBusy_ = false;
    bool prefetchStop_ = false;
};

}  // namespace recstack

#endif  // RECSTACK_STORE_EMBEDDING_STORE_H_
