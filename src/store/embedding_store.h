#ifndef RECSTACK_STORE_EMBEDDING_STORE_H_
#define RECSTACK_STORE_EMBEDDING_STORE_H_

/**
 * @file
 * Sharded embedding parameter store.
 *
 * Production recommendation models keep GBs of embedding tables behind
 * a parameter-server boundary rather than inside each inference
 * worker; the lookup stream is strongly Zipfian (hot users/items), so
 * a small hot-row cache absorbs most of the traffic while the cold
 * tail lives in cheaper, slower memory (UPMEM/EmbedDB-style tiering).
 * EmbeddingStore reproduces that structure in-process:
 *
 *  - All embedding tables of a model live in one store, row-partitioned
 *    across N shards. Each shard has its own mutex, hot-row cache
 *    (store/row_cache.h, LRU or CLOCK, byte-capacity bound) and
 *    counters, so concurrent ServingEngine workers contend only on
 *    rows that hash to the same shard.
 *  - Backing rows are split into a near tier (resident, DRAM-like) and
 *    a far tier (simulated high-latency / low-bandwidth memory). Every
 *    cache miss is charged latency + bytes/bandwidth for its tier into
 *    per-shard simulated seconds and a cost histogram (p99 lookup cost).
 *  - lookupSum / lookupGather serve batched reads with numerics
 *    bit-identical to reading a dense Workspace blob: cached copies are
 *    verbatim row payloads and pooling order is the caller's.
 *  - prefetchAsync warms the cache with the next batch's indices on a
 *    background thread (the classic double-buffered embedding
 *    prefetch), overlapping far-tier fetches with current-batch
 *    compute.
 *
 * The env hatch RECSTACK_DISABLE_STORE=1 makes every integration point
 * (ServingEngine, CLI) fall back to per-worker dense table copies.
 */

#include <cstdint>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "store/row_cache.h"
#include "tensor/tensor.h"

namespace recstack {

/** Shard / cache / tier knobs of an EmbeddingStore. */
struct StoreConfig {
    /// Row-partition count; also the lock granularity.
    int numShards = 8;
    /// Hot-row cache capacity per shard (bytes of row payload).
    size_t cacheBytesPerShard = 1u << 20;
    /// Replacement policy of every shard cache.
    CachePolicy policy = CachePolicy::kLRU;
    /// Leading fraction of each table's rows resident in the near
    /// tier; the remainder lives in the simulated far tier. The Zipf
    /// head is low row indices, so hot rows are near by construction.
    double nearTierFraction = 1.0;
    /// Cost model: per-row fetch pays tier latency + bytes/bandwidth.
    double cacheHitLatencySeconds = 8e-9;    ///< on-package SRAM-ish
    double nearLatencySeconds = 1.2e-7;      ///< local DRAM row fetch
    double nearBandwidthGBs = 64.0;
    double farLatencySeconds = 2.0e-6;       ///< CXL/NVM/remote-style
    double farBandwidthGBs = 8.0;
};

/** Counters one shard accumulates under its lock. */
struct ShardCounters {
    uint64_t lookups = 0;        ///< demand row reads
    uint64_t hits = 0;           ///< served from the hot-row cache
    uint64_t nearFetches = 0;    ///< misses served by the near tier
    uint64_t farFetches = 0;     ///< misses served by the far tier
    uint64_t evictions = 0;
    uint64_t updates = 0;
    uint64_t prefetchedRows = 0; ///< rows warmed by prefetch, not demand
    uint64_t bytesFromCache = 0;
    uint64_t bytesFromNear = 0;
    uint64_t bytesFromFar = 0;
    uint64_t cacheBytesUsed = 0; ///< snapshot at stats() time
    double simSeconds = 0.0;     ///< modeled fetch time, demand reads

    void accumulate(const ShardCounters& other);
    double hitRate() const;
};

/** Aggregated store statistics (stats() snapshot). */
struct StoreStats {
    std::vector<ShardCounters> perShard;
    ShardCounters total;
    /// Modeled per-row demand fetch cost -> occurrence count; the
    /// domain is tiny (one cost per tier per table) so percentiles
    /// are exact.
    std::map<double, uint64_t> costHistogram;

    double hitRate() const { return total.hitRate(); }
    /** Exact p-th percentile (p in [0,1]) of per-row fetch cost. */
    double costPercentile(double p) const;
};

/**
 * Re-export a StoreStats snapshot's totals into the global
 * MetricsRegistry (store.lookups / store.hits / store.near_fetches /
 * store.far_fetches / store.evictions counters plus the
 * store.cache_bytes_used gauge), so store health shows up in the same
 * snapshot as executor/queue/serving metrics. Counters are cumulative
 * across calls; reset the registry before a measured run.
 */
void exportStoreStats(const StoreStats& stats);

/** Process-wide sharded embedding table store. See file comment. */
class EmbeddingStore
{
  public:
    explicit EmbeddingStore(StoreConfig config = {});
    ~EmbeddingStore();

    EmbeddingStore(const EmbeddingStore&) = delete;
    EmbeddingStore& operator=(const EmbeddingStore&) = delete;

    /** Table metadata. */
    struct TableInfo {
        std::string name;
        int64_t rows = 0;
        int64_t dim = 0;
        int64_t nearRows = 0;      ///< rows [0, nearRows) are near-tier
        bool materialized = false;
    };

    /**
     * Move a materialized [rows, dim] float table into the store.
     * Returns the table id ops use for lookups.
     */
    int addTable(const std::string& name, Tensor data);

    /**
     * Register table metadata without payload (profile-only stacks):
     * lookups panic, but tableInfo / expectedHitRate / the profile
     * stream split all work.
     */
    int declareTable(const std::string& name, int64_t rows, int64_t dim);

    /** Table id for a blob name, or -1 if this store does not own it. */
    int tableId(const std::string& name) const;
    bool hasTable(const std::string& name) const { return tableId(name) >= 0; }
    const TableInfo& tableInfo(int table) const;
    size_t numTables() const { return tables_.size(); }

    /**
     * Segment-pooled batched read, the store-side half of
     * SparseLengthsSum / SLWS / SLMean: for each output row b in
     * [b_lo, b_hi), zero out[b*dim, (b+1)*dim) then accumulate the
     * rows selected by indices[offsets[b], offsets[b+1]) in ascending
     * order — the identical fp32 order of the dense kernels, so
     * results are bit-identical. `weights`, when non-null, scales
     * each row (SLWS's fused multiply-add order).
     */
    void lookupSum(int table, const int64_t* indices,
                   const int64_t* offsets, int64_t b_lo, int64_t b_hi,
                   float* out, const float* weights = nullptr);

    /** Row-copy batched read (Gather): out[i] = table[indices[i]]. */
    void lookupGather(int table, const int64_t* indices, int64_t lo,
                      int64_t hi, float* out);

    /**
     * Write one row through to the backing table and refresh any
     * cached copy, so no reader ever observes the stale payload.
     */
    void update(int table, int64_t row, const float* values);

    /** Synchronously warm the cache with these rows (no demand stats). */
    void prefetch(int table, const int64_t* indices, int64_t count);

    /**
     * Queue the next batch's indices for cache warming on the
     * background prefetch thread (started lazily).
     */
    void prefetchAsync(int table, std::vector<int64_t> indices);

    /** Block until the async prefetch queue is fully drained. */
    void drainPrefetch();

    StoreStats stats() const;
    void resetStats();

    /** Bytes of materialized backing tables. */
    uint64_t tableBytes() const;
    /** Bytes currently held by the shard caches. */
    uint64_t cacheBytesUsed() const;
    /** Total cache capacity across shards. */
    uint64_t cacheCapacityBytes() const;
    /** Backing + cache: the store's whole resident footprint. */
    uint64_t residentBytes() const { return tableBytes() + cacheBytesUsed(); }

    /**
     * Analytical hit-rate expectation for a Zipf(zipf) stream over
     * this table, from the sampler's own CDF: the cache is modeled as
     * holding the hottest rows, with total capacity split evenly
     * across tables. Exact for single-table stores at steady state;
     * an upper-bound approximation under multi-table interleaving.
     */
    double expectedHitRate(int table, double zipf) const;

    /**
     * Expected fraction of lookups served by the far tier (misses
     * past both the cache and the near-tier boundary).
     */
    double farTierFraction(int table, double zipf) const;

    const StoreConfig& config() const { return config_; }

    /** True when RECSTACK_DISABLE_STORE is set to a non-zero value. */
    static bool disabledByEnv();

    /**
     * The store's row-partition function, exposed so fleet placement
     * (src/fleet/placement.h) assigns embedding rows to nodes with
     * exactly the rule the store shards by: the table-id offset
     * decorrelates the Zipf heads of co-stored tables (all hot at
     * row 0) across partitions. shardOf() delegates here.
     */
    static size_t rowShard(int table, int64_t row, size_t num_shards);

  private:
    struct Table {
        TableInfo info;
        Tensor data;
    };
    struct Shard {
        mutable std::mutex mu;
        std::unique_ptr<RowCache> cache;
        ShardCounters counters;
        std::map<double, uint64_t> costs;
    };
    struct PrefetchTask {
        int table = 0;
        std::vector<int64_t> indices;
    };

    int registerTable(const std::string& name, TableInfo info,
                      Tensor data);
    size_t shardOf(int table, int64_t row) const;
    /// Returns the row payload (cache copy or backing row), valid
    /// while the shard lock is held; charges stats for a demand read.
    const float* fetchRowLocked(const Table& t, int table, int64_t row,
                                Shard& shard);
    void warmRow(int table, int64_t row);
    void prefetchLoop();

    StoreConfig config_;
    std::vector<Table> tables_;
    std::map<std::string, int> tableByName_;
    std::vector<std::unique_ptr<Shard>> shards_;

    std::mutex prefetchMu_;
    std::condition_variable prefetchCv_;
    std::condition_variable prefetchIdleCv_;
    std::deque<PrefetchTask> prefetchQueue_;
    std::thread prefetchThread_;
    bool prefetchBusy_ = false;
    bool prefetchStop_ = false;
};

}  // namespace recstack

#endif  // RECSTACK_STORE_EMBEDDING_STORE_H_
