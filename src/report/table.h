#ifndef RECSTACK_REPORT_TABLE_H_
#define RECSTACK_REPORT_TABLE_H_

/**
 * @file
 * Fixed-width text table renderer used by the benchmark binaries to
 * print the paper's tables and figure series.
 */

#include <string>
#include <vector>

namespace recstack {

/** Column-aligned ASCII table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with a header underline and padded columns. */
    std::string render() const;

    size_t rows() const { return rows_.size(); }

    /** Fixed-precision double formatting helper. */
    static std::string fmt(double value, int precision = 2);
    /** "12.3x" style speedup cell. */
    static std::string fmtSpeedup(double value);
    /** "42.1%" style percentage cell (input is a fraction). */
    static std::string fmtPercent(double fraction);
    /** Engineering time formatting (us / ms / s). */
    static std::string fmtSeconds(double seconds);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace recstack

#endif  // RECSTACK_REPORT_TABLE_H_
