#include "report/chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace recstack {
namespace {

constexpr char kPalette[] = {'#', '=', '+', ':', '.', '%', '*', 'o'};

}  // namespace

std::string
barChart(const std::vector<ChartItem>& items, int width,
         const std::string& unit)
{
    double max_value = 0.0;
    size_t max_label = 0;
    for (const auto& item : items) {
        max_value = std::max(max_value, item.value);
        max_label = std::max(max_label, item.label.size());
    }
    std::ostringstream oss;
    for (const auto& item : items) {
        const int bars =
            max_value > 0.0
                ? static_cast<int>(std::lround(
                      item.value / max_value * width))
                : 0;
        char value_buf[64];
        std::snprintf(value_buf, sizeof(value_buf), "%10.3f%s",
                      item.value, unit.c_str());
        oss << item.label
            << std::string(max_label - item.label.size(), ' ') << " |"
            << std::string(static_cast<size_t>(bars), '#')
            << std::string(static_cast<size_t>(width - bars), ' ') << "| "
            << value_buf << "\n";
    }
    return oss.str();
}

std::string
stackedBar(const std::string& label, const std::vector<ChartItem>& segments,
           int width)
{
    double total = 0.0;
    for (const auto& seg : segments) {
        total += seg.value;
    }
    std::ostringstream bar;
    std::ostringstream legend;
    int used = 0;
    for (size_t i = 0; i < segments.size(); ++i) {
        const char fill = kPalette[i % sizeof(kPalette)];
        int cells = 0;
        if (total > 0.0) {
            cells = static_cast<int>(std::lround(
                segments[i].value / total * width));
            cells = std::min(cells, width - used);
        }
        bar << std::string(static_cast<size_t>(cells), fill);
        used += cells;
        char pct[32];
        std::snprintf(pct, sizeof(pct), "%.1f%%",
                      total > 0.0 ? 100.0 * segments[i].value / total
                                  : 0.0);
        legend << (i ? "  " : "") << fill << "=" << segments[i].label
               << " " << pct;
    }
    bar << std::string(static_cast<size_t>(width - used), ' ');

    std::ostringstream oss;
    oss << label << " [" << bar.str() << "]\n    " << legend.str() << "\n";
    return oss.str();
}

}  // namespace recstack
