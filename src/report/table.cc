#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace recstack {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    RECSTACK_CHECK(cells.size() == headers_.size(),
                   "row width " << cells.size() << " != header width "
                                << headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            oss << (c ? "  " : "") << cells[c]
                << std::string(widths[c] - cells[c].size(), ' ');
        }
        oss << "\n";
    };
    emit_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c ? 2 : 0);
    }
    oss << std::string(total, '-') << "\n";
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return oss.str();
}

std::string
TextTable::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TextTable::fmtSpeedup(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fx", value);
    return buf;
}

std::string
TextTable::fmtPercent(double fraction)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
    return buf;
}

std::string
TextTable::fmtSeconds(double seconds)
{
    char buf[64];
    if (seconds < 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
    }
    return buf;
}

}  // namespace recstack
