#ifndef RECSTACK_REPORT_CSV_H_
#define RECSTACK_REPORT_CSV_H_

/**
 * @file
 * Minimal CSV writer for exporting figure data to external plotting
 * tools. Handles quoting of fields containing separators/quotes.
 */

#include <ostream>
#include <string>
#include <vector>

namespace recstack {

/** Streaming CSV emitter. */
class CsvWriter
{
  public:
    /** @param out target stream (not owned; must outlive the writer) */
    explicit CsvWriter(std::ostream* out);

    /** Write the header row (once, first). */
    void header(const std::vector<std::string>& columns);

    /** Write one data row; width must match the header. */
    void row(const std::vector<std::string>& cells);

    size_t rowsWritten() const { return rows_; }

    /** RFC-4180-style quoting when needed. */
    static std::string escape(const std::string& field);

  private:
    void emit(const std::vector<std::string>& cells);

    std::ostream* out_;
    size_t columns_ = 0;
    size_t rows_ = 0;
    bool headerWritten_ = false;
};

}  // namespace recstack

#endif  // RECSTACK_REPORT_CSV_H_
