#ifndef RECSTACK_REPORT_CHART_H_
#define RECSTACK_REPORT_CHART_H_

/**
 * @file
 * ASCII chart primitives: horizontal bar charts and single-row
 * stacked bars (used for TopDown and operator-breakdown figures).
 */

#include <string>
#include <utility>
#include <vector>

namespace recstack {

/** Labeled value for charting. */
struct ChartItem {
    std::string label;
    double value = 0.0;
};

/**
 * Horizontal bar chart; bars scale to the max value.
 * @param unit suffix printed after each value
 */
std::string barChart(const std::vector<ChartItem>& items, int width = 40,
                     const std::string& unit = "");

/**
 * One stacked 100% bar from fraction segments; each segment is drawn
 * with its own fill character (cycled from a fixed palette) and a
 * legend line is appended.
 */
std::string stackedBar(const std::string& label,
                       const std::vector<ChartItem>& segments,
                       int width = 50);

}  // namespace recstack

#endif  // RECSTACK_REPORT_CHART_H_
