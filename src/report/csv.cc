#include "report/csv.h"

#include "common/logging.h"

namespace recstack {

CsvWriter::CsvWriter(std::ostream* out) : out_(out)
{
    RECSTACK_CHECK(out_ != nullptr, "CsvWriter needs a stream");
}

std::string
CsvWriter::escape(const std::string& field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quotes) {
        return field;
    }
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"') {
            quoted += '"';
        }
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::emit(const std::vector<std::string>& cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i) {
            *out_ << ',';
        }
        *out_ << escape(cells[i]);
    }
    *out_ << '\n';
}

void
CsvWriter::header(const std::vector<std::string>& columns)
{
    RECSTACK_CHECK(!headerWritten_, "header already written");
    RECSTACK_CHECK(!columns.empty(), "empty CSV header");
    columns_ = columns.size();
    headerWritten_ = true;
    emit(columns);
}

void
CsvWriter::row(const std::vector<std::string>& cells)
{
    RECSTACK_CHECK(headerWritten_, "write the header first");
    RECSTACK_CHECK(cells.size() == columns_,
                   "row width " << cells.size() << " != header width "
                                << columns_);
    ++rows_;
    emit(cells);
}

}  // namespace recstack
