#ifndef RECSTACK_CORE_REGRESSION_STUDY_H_
#define RECSTACK_CORE_REGRESSION_STUDY_H_

/**
 * @file
 * Fig. 16: linear-regression modeling of how algorithmic
 * model-architecture features correlate with pipeline bottlenecks.
 * Observations are the 8 models x the paper's batch sizes on a CPU
 * platform; features are normalized so weight magnitude reads as
 * degree of impact.
 */

#include <string>
#include <vector>

#include "analysis/linreg.h"
#include "core/sweep.h"

namespace recstack {

/** The fitted feature -> bottleneck models. */
struct RegressionStudy {
    std::vector<std::string> featureNames;
    std::vector<std::string> targetNames;
    std::vector<LinearFit> fits;   ///< one per target
    size_t observations = 0;
};

/** Extract the Fig. 16 feature vector of one model at one batch. */
std::vector<double> regressionFeatures(const ModelFeatures& f,
                                       int64_t batch);

/** Names matching regressionFeatures() order. */
std::vector<std::string> regressionFeatureNames();

/**
 * Run the study: characterize every model at every batch size on the
 * given platform (index into the sweep's platform list; must be a
 * CPU) and fit one regression per pipeline bottleneck.
 */
RegressionStudy runRegressionStudy(SweepCache& sweep, size_t platform_idx,
                                   const std::vector<int64_t>& batches);

}  // namespace recstack

#endif  // RECSTACK_CORE_REGRESSION_STUDY_H_
