#include "core/characterizer.h"

#include "graph/executor.h"

namespace recstack {

RunResult
simulateProfiles(const std::vector<KernelProfile>& profiles,
                 const Platform& platform, ModelId model, int64_t batch,
                 uint64_t input_bytes, size_t input_blobs, uint64_t seed)
{
    RunResult result;
    result.model = model;
    result.platformName = platform.name();
    result.kind = platform.kind;
    result.batch = batch;

    if (platform.kind == PlatformKind::kCpu) {
        CpuModel cpu(platform.cpu, seed);
        // Warm-up pass: populate caches, DSB regions, predictor.
        for (const KernelProfile& kp : profiles) {
            (void)cpu.simulateKernel(kp);
        }
        // Measured pass.
        const double hz = platform.cpu.freqGHz * 1e9;
        for (const KernelProfile& kp : profiles) {
            const CpuCounters c = cpu.simulateKernel(kp);
            result.breakdown.add(kp.opType, c.cycles / hz);
            result.counters.accumulate(c);
        }
        result.seconds = result.counters.cycles / hz;
        result.topdown = deriveTopDown(result.counters, platform.cpu);
        return result;
    }

    if (platform.kind == PlatformKind::kPim) {
        // The pooling ops run on the DPUs; everything else — data
        // loading included (a PIM host loads inputs exactly like a
        // plain CPU) — runs on the attached host CPU model.
        std::vector<KernelProfile> host_profiles;
        std::vector<KernelProfile> offload_profiles;
        host_profiles.reserve(profiles.size());
        for (const KernelProfile& kp : profiles) {
            if (PimModel::offloadable(kp)) {
                offload_profiles.push_back(kp);
            } else {
                host_profiles.push_back(kp);
            }
        }

        CpuModel cpu(platform.pim.host, seed);
        for (const KernelProfile& kp : host_profiles) {
            (void)cpu.simulateKernel(kp);
        }
        const double hz = platform.pim.host.freqGHz * 1e9;
        for (const KernelProfile& kp : host_profiles) {
            const CpuCounters c = cpu.simulateKernel(kp);
            result.breakdown.add(kp.opType, c.cycles / hz);
            result.counters.accumulate(c);
        }
        result.topdown = deriveTopDown(result.counters, platform.pim.host);

        PimModel pim(platform.pim);
        result.pim = pim.simulateOffload(offload_profiles);
        for (const PimOpTime& t : result.pim.opTimes) {
            result.breakdown.add(t.opType, t.seconds);
        }
        result.seconds =
            result.counters.cycles / hz + result.pim.offloadSeconds;
        exportPimStats(result.pim);
        return result;
    }

    GpuModel gpu(platform.gpu);
    // The device does not run host-side data loading; inputs cross
    // PCIe instead.
    std::vector<KernelProfile> kernels;
    kernels.reserve(profiles.size());
    for (const KernelProfile& kp : profiles) {
        if (kp.opType != "DataLoad") {
            kernels.push_back(kp);
        }
    }
    result.gpu = gpu.simulateNet(kernels, input_bytes, input_blobs);
    for (const auto& t : result.gpu.opTimes) {
        result.breakdown.add(t.opType, t.seconds);
    }
    result.breakdown.add("DataTransfer", result.gpu.transferSeconds);
    result.seconds = result.gpu.totalSeconds;
    return result;
}

Characterizer::ModelCtx::ModelCtx(Model m) : model(std::move(m))
{
    ws.setShapeOnly(true);
    model.declareParams(ws);
    gen = std::make_unique<BatchGenerator>(model.workload);
    CompileOptions profile_opts;
    profile_opts.fuseOps = false;
    profile_opts.planMemory = false;
    profileNet = CompiledNet::compile(model.net, profile_opts);
}

Characterizer::Characterizer(ModelOptions opts, uint64_t seed,
                             FrameworkId framework)
    : opts_(std::move(opts)), seed_(seed), framework_(framework)
{
}

Characterizer::ModelCtx&
Characterizer::ctx(ModelId id)
{
    auto it = ctxs_.find(id);
    if (it == ctxs_.end()) {
        it = ctxs_.emplace(
            id, std::make_unique<ModelCtx>(
                    buildModelInFramework(id, framework_, opts_)))
                 .first;
    }
    return *it->second;
}

const Model&
Characterizer::model(ModelId id)
{
    return ctx(id).model;
}

EmbeddingStore*
Characterizer::enableStore(ModelId id, const StoreConfig& cfg)
{
    ModelCtx& mc = ctx(id);
    auto store = std::make_unique<EmbeddingStore>(cfg);
    for (const WeightSpec& spec : mc.model.weights) {
        if (spec.embedding && spec.shape.size() == 2) {
            store->declareTable(spec.name, spec.shape[0],
                                spec.shape[1]);
        }
    }
    mc.store = std::move(store);
    // The profiling workspace holds shape-only table blobs
    // (declareParams), so attaching the store flips the lookup ops'
    // profile lowering to the cache-filtered stream split.
    mc.ws.attachStore(mc.store.get());
    return mc.store.get();
}

const CompiledNet&
Characterizer::compiled(ModelId id)
{
    ModelCtx& mc = ctx(id);
    if (mc.plannedNet == nullptr) {
        mc.plannedNet = CompiledNet::compile(mc.model.net);
    }
    return *mc.plannedNet;
}

const NetPlan&
Characterizer::memoryPlan(ModelId id, int64_t batch)
{
    (void)compiled(id);
    ModelCtx& mc = ctx(id);
    mc.gen->declare(mc.ws, batch);
    return mc.plannedNet->plan(mc.ws, batch);
}

std::vector<KernelProfile>
Characterizer::profiles(ModelId id, int64_t batch, uint64_t* input_bytes,
                        size_t* input_blobs)
{
    ModelCtx& mc = ctx(id);
    mc.gen->declare(mc.ws, batch);
    // Profile through the (unfused) compiled net: the lowered
    // profiles are identical to an interpreted kProfileOnly run, but
    // memoized per batch, so grid sweeps pay shape inference and
    // profile lowering once per (model, batch) instead of once per
    // platform visit.
    const NetPlan& plan = mc.profileNet->plan(mc.ws, batch);

    std::vector<KernelProfile> out;
    out.reserve(plan.profiles.size() + 1);
    out.push_back(mc.gen->dataLoadProfile(batch));
    for (const auto& kp : plan.profiles) {
        out.push_back(kp);
    }
    if (input_bytes != nullptr) {
        *input_bytes = mc.gen->inputBytes(batch);
    }
    if (input_blobs != nullptr) {
        size_t blobs = mc.model.workload.continuous.size();
        for (const auto& cat : mc.model.workload.categorical) {
            blobs += cat.weightsBlob.empty() ? 2 : 3;
        }
        *input_blobs = blobs;
    }
    return out;
}

RunResult
Characterizer::run(ModelId id, const Platform& platform, int64_t batch)
{
    uint64_t input_bytes = 0;
    size_t input_blobs = 0;
    const std::vector<KernelProfile> kernel_profiles =
        profiles(id, batch, &input_bytes, &input_blobs);
    return simulateProfiles(kernel_profiles, platform, id, batch,
                            input_bytes, input_blobs, seed_);
}

}  // namespace recstack
