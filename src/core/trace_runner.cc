#include "core/trace_runner.h"

namespace recstack {

RecordedTrace
recordTrace(Characterizer& characterizer, ModelId id, int64_t batch)
{
    RecordedTrace trace;
    uint64_t input_bytes = 0;
    size_t input_blobs = 0;
    trace.kernels =
        characterizer.profiles(id, batch, &input_bytes, &input_blobs);
    trace.meta.model = modelName(id);
    trace.meta.batch = batch;
    trace.meta.inputBytes = input_bytes;
    trace.meta.inputBlobs = input_blobs;
    return trace;
}

RunResult
replayTrace(const RecordedTrace& trace, const Platform& platform,
            uint64_t seed)
{
    // Model identity is advisory on replay; default to NCF when the
    // trace's name is not one of the stock eight.
    ModelId id = ModelId::kNCF;
    for (ModelId candidate : allModels()) {
        if (trace.meta.model == modelName(candidate)) {
            id = candidate;
        }
    }
    return simulateProfiles(trace.kernels, platform, id,
                            trace.meta.batch, trace.meta.inputBytes,
                            trace.meta.inputBlobs, seed);
}

RunResult
replayTraceFile(const std::string& path, const Platform& platform,
                uint64_t seed)
{
    RecordedTrace trace;
    std::string error;
    if (!loadTrace(path, &trace.meta, &trace.kernels, &error)) {
        RECSTACK_FATAL("cannot replay '" << path << "': " << error);
    }
    return replayTrace(trace, platform, seed);
}

}  // namespace recstack
