#include "core/sweep.h"

namespace recstack {

std::vector<int64_t>
paperBatchSizes()
{
    return {1, 4, 16, 64, 256, 1024, 4096, 16384};
}

std::vector<int64_t>
breakdownBatchSizes()
{
    return {4, 64, 1024, 16384};
}

SweepCache::SweepCache(std::vector<Platform> platforms, ModelOptions opts,
                       uint64_t seed)
    : platforms_(std::move(platforms)), char_(std::move(opts), seed)
{
    RECSTACK_CHECK(!platforms_.empty(), "sweep needs platforms");
}

const RunResult&
SweepCache::get(ModelId model, size_t platform_idx, int64_t batch)
{
    RECSTACK_CHECK(platform_idx < platforms_.size(),
                   "platform index out of range");
    const auto key = std::make_tuple(model, platform_idx, batch);
    auto it = cache_.find(key);
    if (it == cache_.end()) {
        it = cache_.emplace(
            key, char_.run(model, platforms_[platform_idx], batch))
                 .first;
    }
    return it->second;
}

double
SweepCache::speedupOverBaseline(ModelId model, size_t platform_idx,
                                int64_t batch)
{
    const double base = get(model, 0, batch).seconds;
    const double other = get(model, platform_idx, batch).seconds;
    return other > 0.0 ? base / other : 0.0;
}

size_t
SweepCache::optimalPlatform(ModelId model, int64_t batch)
{
    size_t best = 0;
    double best_seconds = get(model, 0, batch).seconds;
    for (size_t p = 1; p < platforms_.size(); ++p) {
        const double s = get(model, p, batch).seconds;
        if (s < best_seconds) {
            best_seconds = s;
            best = p;
        }
    }
    return best;
}

}  // namespace recstack
