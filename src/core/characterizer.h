#ifndef RECSTACK_CORE_CHARACTERIZER_H_
#define RECSTACK_CORE_CHARACTERIZER_H_

/**
 * @file
 * Characterizer: the cross-stack measurement engine. Runs one of the
 * eight models at a given batch size on a platform model and returns
 * everything the paper's three characterization layers report:
 * end-to-end latency (systems), operator breakdown (software), and
 * counters/TopDown (microarchitecture).
 */

#include <map>
#include <memory>

#include "core/breakdown.h"
#include "framework/frameworks.h"
#include "gpu/gpu_model.h"
#include "graph/compiled_net.h"
#include "models/model.h"
#include "pim/pim_model.h"
#include "platform/platform.h"
#include "store/embedding_store.h"
#include "topdown/topdown.h"
#include "uarch/cpu_model.h"
#include "workload/batch_generator.h"

namespace recstack {

/** One (model, platform, batch) characterization. */
struct RunResult {
    ModelId model;
    std::string platformName;
    PlatformKind kind = PlatformKind::kCpu;
    int64_t batch = 0;

    /// End-to-end inference seconds (data loading included, as in the
    /// paper's methodology).
    double seconds = 0.0;
    OperatorBreakdown breakdown;

    // CPU-only payloads.
    CpuCounters counters;
    TopDownResult topdown;

    // GPU-only payloads.
    GpuRunResult gpu;

    // PIM-only payloads (the offloaded share; the host share reuses
    // the CPU counters/topdown above, since a PIM platform is a CPU
    // whose pooling ops moved into memory).
    PimRunResult pim;
};

/**
 * Simulate an explicit kernel-profile sequence on a platform —
 * the platform half of a characterization run, also used to replay
 * recorded traces. Profiles with opType "DataLoad" are host-side
 * work: simulated on CPUs, replaced by the PCIe transfer on GPUs,
 * and run on the host CPU of a PIM platform (which offloads only
 * the embedding pooling ops to its DPU ranks).
 */
RunResult simulateProfiles(const std::vector<KernelProfile>& profiles,
                           const Platform& platform, ModelId model,
                           int64_t batch, uint64_t input_bytes,
                           size_t input_blobs, uint64_t seed = 42);

/** Cross-stack measurement engine with per-model caching. */
class Characterizer
{
  public:
    explicit Characterizer(ModelOptions opts = {}, uint64_t seed = 42,
                           FrameworkId framework = FrameworkId::kCaffe2);

    /** Characterize one use case. */
    RunResult run(ModelId id, const Platform& platform, int64_t batch);

    /**
     * The platform-independent kernel-profile sequence of one use
     * case (data-loading first, then the operators) plus the wire
     * geometry a GPU replay needs.
     */
    std::vector<KernelProfile> profiles(ModelId id, int64_t batch,
                                        uint64_t* input_bytes = nullptr,
                                        size_t* input_blobs = nullptr);

    /** The (cached) built model. */
    const Model& model(ModelId id);

    /**
     * The model's fused + memory-planned compiled form (compiled
     * lazily, once per model). Exposes the fusion decisions and
     * liveness table the `recstack plan` dump prints.
     */
    const CompiledNet& compiled(ModelId id);

    /**
     * The batch-@c batch arena memory plan of the fused net. Plans
     * are memoized inside the compiled net, so a batch-size grid
     * (core/sweep.h) prices each batch's layout exactly once.
     */
    const NetPlan& memoryPlan(ModelId id, int64_t batch);

    const ModelOptions& options() const { return opts_; }

    /**
     * Opt in to store-backed characterization for one model: a
     * sharded EmbeddingStore (tables declared shape-only) is attached
     * to the model's profiling workspace, so every subsequent
     * profiles()/run() lowers the table reads of the lookup ops as
     * cache-filtered streams — expected cache hits over the hot-row
     * cache footprint plus near/far-tier miss remainders — instead of
     * one raw random stream per table. Fig. 12/14-style DRAM and
     * cache analyses then see the traffic a store deployment leaks
     * past its cache. Call before the first profiles() for the model:
     * lowered profiles are memoized per batch and are NOT relowered.
     * Default characterizations (no call) are byte-identical to
     * before. Returns the store for knob inspection.
     */
    EmbeddingStore* enableStore(ModelId id, const StoreConfig& cfg = {});

  private:
    struct ModelCtx {
        Model model;
        Workspace ws;
        std::unique_ptr<BatchGenerator> gen;
        /// Unfused compilation: op-for-op the builder's net, so its
        /// cached per-batch profiles are byte-identical with the
        /// interpreted executor's (the golden-figure contract), while
        /// a sweep re-visiting a batch size skips re-lowering.
        std::shared_ptr<CompiledNet> profileNet;
        /// Fused + planned compilation backing compiled()/memoryPlan().
        std::shared_ptr<CompiledNet> plannedNet;
        /// Optional store backing the table blobs (enableStore()).
        std::unique_ptr<EmbeddingStore> store;

        explicit ModelCtx(Model m);
    };

    ModelCtx& ctx(ModelId id);

    ModelOptions opts_;
    uint64_t seed_;
    FrameworkId framework_;
    std::map<ModelId, std::unique_ptr<ModelCtx>> ctxs_;
};

}  // namespace recstack

#endif  // RECSTACK_CORE_CHARACTERIZER_H_
