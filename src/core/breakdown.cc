#include "core/breakdown.h"

#include <algorithm>

namespace recstack {

void
OperatorBreakdown::add(const std::string& op_type, double seconds)
{
    byType_[op_type] += seconds;
    total_ += seconds;
}

double
OperatorBreakdown::fraction(const std::string& op_type) const
{
    if (total_ <= 0.0) {
        return 0.0;
    }
    auto it = byType_.find(op_type);
    return it == byType_.end() ? 0.0 : it->second / total_;
}

std::string
OperatorBreakdown::dominantType() const
{
    std::string best;
    double best_seconds = -1.0;
    for (const auto& [type, seconds] : byType_) {
        if (seconds > best_seconds) {
            best_seconds = seconds;
            best = type;
        }
    }
    return best;
}

std::vector<std::pair<std::string, double>>
OperatorBreakdown::fractions() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(byType_.size());
    for (const auto& [type, seconds] : byType_) {
        out.emplace_back(type, total_ > 0.0 ? seconds / total_ : 0.0);
    }
    std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return a.second > b.second;
    });
    return out;
}

}  // namespace recstack
