#include "core/regression_study.h"

#include <cmath>

namespace recstack {

std::vector<std::string>
regressionFeatureNames()
{
    return {"NumTables",       "LookupsPerTable", "LatentDim",
            "FCtoEmbRatio",    "FCTopHeaviness",  "Attention",
            "GRU",             "Log2Batch"};
}

std::vector<double>
regressionFeatures(const ModelFeatures& f, int64_t batch)
{
    return {static_cast<double>(f.numTables),
            f.lookupsPerTable,
            static_cast<double>(f.latentDim),
            std::log1p(f.fcToEmbRatio()),
            f.fcTopHeaviness(),
            f.attention ? 1.0 : 0.0,
            f.gru ? 1.0 : 0.0,
            std::log2(static_cast<double>(batch))};
}

RegressionStudy
runRegressionStudy(SweepCache& sweep, size_t platform_idx,
                   const std::vector<int64_t>& batches)
{
    RECSTACK_CHECK(sweep.platforms()[platform_idx].kind ==
                       PlatformKind::kCpu,
                   "regression study needs a CPU platform");

    RegressionStudy study;
    study.featureNames = regressionFeatureNames();
    study.targetNames = {"Retiring", "BadSpeculation", "FrontendBound",
                         "BackendCore", "BackendMemory"};

    std::vector<std::vector<double>> x;
    std::vector<std::vector<double>> ys(study.targetNames.size());

    for (ModelId id : allModels()) {
        const ModelFeatures& feats =
            sweep.characterizer().model(id).features;
        for (int64_t batch : batches) {
            const RunResult& r = sweep.get(id, platform_idx, batch);
            x.push_back(regressionFeatures(feats, batch));
            ys[0].push_back(r.topdown.l1.retiring);
            ys[1].push_back(r.topdown.l1.badSpeculation);
            ys[2].push_back(r.topdown.l1.frontendBound);
            ys[3].push_back(r.topdown.l2.beCore);
            ys[4].push_back(r.topdown.l2.beMemory);
        }
    }

    study.observations = x.size();
    study.fits.reserve(ys.size());
    for (const auto& y : ys) {
        study.fits.push_back(fitLinear(x, y));
    }
    return study;
}

}  // namespace recstack
