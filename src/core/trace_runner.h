#ifndef RECSTACK_CORE_TRACE_RUNNER_H_
#define RECSTACK_CORE_TRACE_RUNNER_H_

/**
 * @file
 * Record/replay glue between the Characterizer and the trace format:
 * capture a use case's kernel profiles once, then re-simulate them on
 * any platform model without rebuilding the model.
 */

#include <string>
#include <vector>

#include "core/characterizer.h"
#include "trace/trace.h"

namespace recstack {

/** A captured use case. */
struct RecordedTrace {
    TraceMeta meta;
    std::vector<KernelProfile> kernels;
};

/** Capture (model, batch) as a portable trace. */
RecordedTrace recordTrace(Characterizer& characterizer, ModelId id,
                          int64_t batch);

/** Re-simulate a trace on one platform. */
RunResult replayTrace(const RecordedTrace& trace,
                      const Platform& platform, uint64_t seed = 42);

/**
 * Load a trace file and replay it; panics (fatal) on malformed
 * files — CLI convenience.
 */
RunResult replayTraceFile(const std::string& path,
                          const Platform& platform, uint64_t seed = 42);

}  // namespace recstack

#endif  // RECSTACK_CORE_TRACE_RUNNER_H_
