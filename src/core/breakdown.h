#ifndef RECSTACK_CORE_BREAKDOWN_H_
#define RECSTACK_CORE_BREAKDOWN_H_

/**
 * @file
 * OperatorBreakdown: execution time aggregated by operator type, the
 * unit of the paper's algorithms-and-software characterization
 * (Figs. 6 and 7).
 */

#include <map>
#include <string>
#include <vector>

namespace recstack {

/** Seconds-by-operator-type aggregation. */
class OperatorBreakdown
{
  public:
    void add(const std::string& op_type, double seconds);

    double total() const { return total_; }

    /** Fraction of total time for one type (0 if absent). */
    double fraction(const std::string& op_type) const;

    /** The type consuming the most time ("" when empty). */
    std::string dominantType() const;

    /** {type, fraction} pairs sorted by descending share. */
    std::vector<std::pair<std::string, double>> fractions() const;

    const std::map<std::string, double>& byType() const { return byType_; }

  private:
    std::map<std::string, double> byType_;
    double total_ = 0.0;
};

}  // namespace recstack

#endif  // RECSTACK_CORE_BREAKDOWN_H_
