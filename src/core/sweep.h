#ifndef RECSTACK_CORE_SWEEP_H_
#define RECSTACK_CORE_SWEEP_H_

/**
 * @file
 * Sweep utilities: memoized model x platform x batch-size grids, the
 * paper's batch-size axes, and the optimal-platform summary (Fig. 5).
 */

#include <map>
#include <tuple>
#include <vector>

#include "core/characterizer.h"

namespace recstack {

/** Batch sizes 1..16384 as plotted in Figs. 3-5 (powers of four). */
std::vector<int64_t> paperBatchSizes();

/** The four batch sizes of the Fig. 6 operator-breakdown panels. */
std::vector<int64_t> breakdownBatchSizes();

/** Memoized characterization grid over a fixed platform list. */
class SweepCache
{
  public:
    SweepCache(std::vector<Platform> platforms, ModelOptions opts = {},
               uint64_t seed = 42);

    const RunResult& get(ModelId model, size_t platform_idx,
                         int64_t batch);

    const std::vector<Platform>& platforms() const { return platforms_; }
    Characterizer& characterizer() { return char_; }

    /**
     * The memoized arena memory plan for one (model, batch) grid
     * point (platform-independent; see Characterizer::memoryPlan).
     */
    const NetPlan& memoryPlan(ModelId model, int64_t batch)
    {
        return char_.memoryPlan(model, batch);
    }

    /** Speedup of platform_idx over the baseline (index 0). */
    double speedupOverBaseline(ModelId model, size_t platform_idx,
                               int64_t batch);

    /** Index of the fastest platform for this use case. */
    size_t optimalPlatform(ModelId model, int64_t batch);

  private:
    std::vector<Platform> platforms_;
    Characterizer char_;
    std::map<std::tuple<ModelId, size_t, int64_t>, RunResult> cache_;
};

}  // namespace recstack

#endif  // RECSTACK_CORE_SWEEP_H_
