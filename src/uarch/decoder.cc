#include "uarch/decoder.h"

#include <algorithm>

namespace recstack {

DecoderModel::DecoderModel(const CpuConfig& cfg)
    : capacityUops_(cfg.dsbCapacityUops),
      switchPenalty_(cfg.dsbSwitchPenalty),
      refillUopsPerFlush_(cfg.dsbRefillUopsPerFlush)
{
    // Delivering a uop through MITE costs 1/miteBW cycles of frontend
    // occupancy versus 1/width when the pipeline is fully fed.
    const double width = static_cast<double>(cfg.pipelineWidth);
    mitePenaltyPerUop_ =
        std::max(0.0, 1.0 / cfg.miteUopsPerCycle - 1.0 / width);
}

DecoderResult
DecoderModel::evaluate(const DecoderInput& input) const
{
    DecoderResult r;

    // --- Hot kernel region ---
    uint64_t kernel_mite = 0;
    if (input.kernelFootprintUops > capacityUops_) {
        // The loop body does not fit the DSB: the overflowing
        // fraction of every iteration re-decodes through MITE, and
        // each wrap-around is a DSB<->MITE switch pair.
        const double coverage =
            static_cast<double>(capacityUops_) /
            static_cast<double>(input.kernelFootprintUops);
        kernel_mite = static_cast<uint64_t>(
            static_cast<double>(input.kernelUops) * (1.0 - coverage));
        r.switches += input.kernelUops /
                      std::max<uint64_t>(1, input.kernelFootprintUops) * 2;
    } else {
        // Fits: only the first decode of the region goes via MITE.
        kernel_mite = std::min(input.kernelUops,
                               input.kernelFootprintUops);
    }

    // --- Branch-mispredict flushes ---
    // Each flush redirects fetch; the DSB window restarts and the
    // first uops after redirect decode through MITE.
    const uint64_t refill_uops =
        input.flushes * static_cast<uint64_t>(refillUopsPerFlush_);
    r.switches += input.flushes;

    // --- Dispatch path: mostly DSB-resident when the op type
    // repeats back-to-back, mostly legacy-decoded on a switch. ---
    const double cold_fraction = input.dispatchWarm ? 0.15 : 0.60;
    const uint64_t cold_mite = static_cast<uint64_t>(
        static_cast<double>(input.dispatchUops) * cold_fraction);
    r.switches += cold_mite > 0 ? 2 : 0;

    const uint64_t dsb_thrash_mite =
        std::min(input.kernelUops, kernel_mite + refill_uops);
    r.uopsFromMite = dsb_thrash_mite + cold_mite;
    const uint64_t total = input.kernelUops + input.dispatchUops;
    r.uopsFromDsb = total > r.uopsFromMite ? total - r.uopsFromMite : 0;

    r.dsbLimitedCycles =
        static_cast<double>(dsb_thrash_mite) * mitePenaltyPerUop_ +
        static_cast<double>(r.switches) *
            static_cast<double>(switchPenalty_);
    r.miteLimitedCycles =
        static_cast<double>(cold_mite) * mitePenaltyPerUop_;
    return r;
}

}  // namespace recstack
