#ifndef RECSTACK_UARCH_CPU_MODEL_H_
#define RECSTACK_UARCH_CPU_MODEL_H_

/**
 * @file
 * CpuModel: the trace-driven CPU microarchitecture simulator.
 *
 * One CpuModel instance holds the persistent microarchitectural state
 * of a core (data-cache hierarchy, L1I, branch predictor) and consumes
 * KernelProfiles operator by operator, producing PMU-style counters
 * and a TopDown-consistent cycle breakdown per kernel.
 *
 * Memory and branch streams are simulated by sampling: up to a few
 * thousand representative accesses/branches are pushed through the
 * real structural models and the observed rates are scaled to the
 * stream's full population. This keeps full model-batch-platform
 * sweeps tractable while preserving set-conflict, reuse and learning
 * behaviour.
 */

#include <string>
#include <unordered_map>

#include "common/rng.h"
#include "platform/platform.h"
#include "profile/kernel_profile.h"
#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/counters.h"
#include "uarch/decoder.h"
#include "uarch/dram.h"
#include "uarch/exec_ports.h"

namespace recstack {

/** Platform-lowered micro-op mix of one kernel (Fig. 9 / Fig. 11). */
struct UopMix {
    uint64_t fma = 0;
    uint64_t vec = 0;
    uint64_t scalar = 0;
    uint64_t branch = 0;
    uint64_t load = 0;
    uint64_t store = 0;
    uint64_t vecMem = 0;   ///< subset of load+store that is vector-width

    uint64_t total() const
    {
        return fma + vec + scalar + branch + load + store;
    }
    uint64_t avx() const { return fma + vec + vecMem; }
};

/** Trace-driven single-core simulator. */
class CpuModel
{
  public:
    explicit CpuModel(const CpuConfig& cfg, uint64_t seed = 0x5eedcafe);

    /** Simulate one operator execution; returns its counters. */
    CpuCounters simulateKernel(const KernelProfile& kp);

    /** Lower a profile to this platform's micro-op mix (no state). */
    UopMix lowerUops(const KernelProfile& kp) const;

    /** Drop all microarchitectural state (cold caches/predictor). */
    void reset();

    const CpuConfig& config() const { return cfg_; }
    const DramModel& dram() const { return dram_; }

    /// Sampling caps (public so tests can reason about exactness).
    static constexpr uint64_t kMaxStreamSample = 4096;
    static constexpr uint64_t kMaxBranchSample = 2048;

  private:
    struct StreamOut {
        uint64_t l1 = 0, l2 = 0, l3 = 0, dram = 0;
        double stallL2 = 0.0, stallL3 = 0.0, stallDram = 0.0;
        uint64_t dramBytes = 0;
        uint64_t loadUops = 0, storeUops = 0, vecMemUops = 0;
    };

    /** Base address for a named data/code region (stable per name). */
    uint64_t regionBase(const std::string& name, uint64_t footprint);

    StreamOut simulateStream(const MemStream& s);

    /**
     * Walk @c fraction of a code region through the L1I, starting at
     * a deterministic rotating offset.
     */
    void walkCode(const std::string& region, uint64_t bytes,
                  double fraction, uint64_t* accesses, uint64_t* misses);

    CpuConfig cfg_;
    CacheHierarchy dcache_;
    Cache icache_;
    GsharePredictor bp_;
    DecoderModel decoder_;
    PortScheduler ports_;
    DramModel dram_;
    Rng rng_;

    std::unordered_map<std::string, std::pair<uint64_t, uint64_t>>
        regions_;              ///< name -> {base, size}
    uint64_t nextBase_ = 0x100000000ull;
    std::string lastOpType_;   ///< dispatch-path warmth tracking
};

}  // namespace recstack

#endif  // RECSTACK_UARCH_CPU_MODEL_H_
