#ifndef RECSTACK_UARCH_CACHE_HIERARCHY_H_
#define RECSTACK_UARCH_CACHE_HIERARCHY_H_

/**
 * @file
 * Three-level data-cache hierarchy with configurable L3 participation
 * policy: inclusive (Broadwell: L3 evictions back-invalidate inner
 * levels) or exclusive (Cascade Lake: L3 is a victim cache filled by
 * L2 evictions), matching Table II's "Cache Inclusion Policy" row.
 */

#include "platform/platform.h"
#include "uarch/cache.h"

namespace recstack {

/** Level at which a demand access was satisfied. */
enum class HitLevel { kL1, kL2, kL3, kDram };

/** L1D + L2 + L3 + policy glue. */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const CpuConfig& cfg);

    /** Access one line-sized location; returns the serving level. */
    HitLevel access(uint64_t addr, bool is_write);

    void reset();

    const Cache& l1() const { return l1_; }
    const Cache& l2() const { return l2_; }
    const Cache& l3() const { return l3_; }

  private:
    Cache l1_;
    Cache l2_;
    Cache l3_;
    InclusionPolicy policy_;
};

}  // namespace recstack

#endif  // RECSTACK_UARCH_CACHE_HIERARCHY_H_
