#include "uarch/exec_ports.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace recstack {
namespace {

/** Spread @c uops across the given ports, minimizing the max load. */
void
waterFill(std::array<double, 8>& load, const std::vector<int>& ports,
          double uops)
{
    // Repeatedly top up the least-loaded eligible port; with a small
    // fixed port set an exact incremental fill is cheap: sort by
    // load and level them up one at a time.
    while (uops > 0.0) {
        int min_port = ports[0];
        double min_load = load[static_cast<size_t>(min_port)];
        double second = -1.0;
        for (int p : ports) {
            const double l = load[static_cast<size_t>(p)];
            if (l < min_load) {
                min_load = l;
                min_port = p;
            }
        }
        for (int p : ports) {
            const double l = load[static_cast<size_t>(p)];
            if (p != min_port && (second < 0.0 || l < second) &&
                l > min_load) {
                second = l;
            }
        }
        if (second < 0.0) {
            // All eligible ports level: split evenly and finish.
            const double share = uops / static_cast<double>(ports.size());
            for (int p : ports) {
                load[static_cast<size_t>(p)] += share;
            }
            return;
        }
        const double gap = second - min_load;
        const double add = std::min(uops, gap);
        load[static_cast<size_t>(min_port)] += add;
        uops -= add;
    }
}

}  // namespace

double
PortResult::totalPortUops() const
{
    double total = 0.0;
    for (double l : portLoad) {
        total += l;
    }
    return total;
}

PortScheduler::PortScheduler(const CpuConfig& cfg)
    : width_(cfg.pipelineWidth), fpAddPorts_(cfg.fpAddPorts)
{
    RECSTACK_CHECK(cfg.fmaPorts >= 1 && cfg.fmaPorts <= 2 &&
                   cfg.loadPorts >= 1 && cfg.loadPorts <= 2 &&
                   cfg.storePorts >= 1 && cfg.storePorts <= 2,
                   "unsupported port configuration");
    fmaPorts_ = cfg.fmaPorts == 2 ? std::vector<int>{0, 1}
                                  : std::vector<int>{0};
    loadPorts_ = cfg.loadPorts == 2 ? std::vector<int>{2, 3}
                                    : std::vector<int>{2};
    storePorts_ = cfg.storePorts == 2 ? std::vector<int>{4, 7}
                                      : std::vector<int>{4};
}

PortResult
PortScheduler::schedule(const PortInput& input) const
{
    PortResult r;
    // Port map (Broadwell/Skylake-like):
    //   0, 1       vector FMA + scalar (port 1 also FP add on BDW;
    //              SKL+ adds FP add to port 0)
    //   5          vector shuffle + scalar
    //   6          scalar + branch
    //   2, 3       loads
    //   4, 7       stores
    waterFill(r.portLoad, fmaPorts_, static_cast<double>(input.fmaUops));
    // Non-FMA vector work: half FP-add class (restricted ports),
    // half shuffle class (port 5).
    const double fp_add = static_cast<double>(input.vecUops) * 0.5;
    const double shuffle = static_cast<double>(input.vecUops) - fp_add;
    if (fpAddPorts_ >= 2) {
        waterFill(r.portLoad, {0, 1}, fp_add);
    } else {
        waterFill(r.portLoad, {1}, fp_add);
    }
    waterFill(r.portLoad, {5}, shuffle);
    waterFill(r.portLoad, {6}, static_cast<double>(input.branchUops));
    waterFill(r.portLoad, {0, 1, 5, 6},
              static_cast<double>(input.scalarUops));
    waterFill(r.portLoad, loadPorts_,
              static_cast<double>(input.loadUops));
    waterFill(r.portLoad, storePorts_,
              static_cast<double>(input.storeUops));

    r.computeCycles = *std::max_element(r.portLoad.begin(),
                                        r.portLoad.end());
    return r;
}

void
PortScheduler::busyDistribution(const PortResult& r, double cycles,
                                double* at_least)
{
    // Per-port utilization, clamped to [0, 1].
    double rho[8];
    for (int p = 0; p < 8; ++p) {
        rho[p] = cycles > 0.0
                     ? std::min(1.0, r.portLoad[static_cast<size_t>(p)] /
                                     cycles)
                     : 0.0;
    }
    // Poisson-binomial over 8 independent ports via DP.
    double pmf[9] = {1, 0, 0, 0, 0, 0, 0, 0, 0};
    for (int p = 0; p < 8; ++p) {
        for (int k = p + 1; k >= 1; --k) {
            pmf[k] = pmf[k] * (1.0 - rho[p]) + pmf[k - 1] * rho[p];
        }
        pmf[0] *= (1.0 - rho[p]);
    }
    double tail = 0.0;
    for (int k = 8; k >= 0; --k) {
        tail += pmf[k];
        at_least[k] = std::min(1.0, tail);
    }
}

}  // namespace recstack
