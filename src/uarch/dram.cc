#include "uarch/dram.h"

#include "common/logging.h"

namespace recstack {

DramModel::DramModel(double peak_gbs, int latency_cycles, double freq_ghz)
    : peakGBs_(peak_gbs), latencyCycles_(latency_cycles),
      freqGHz_(freq_ghz)
{
    RECSTACK_CHECK(peak_gbs > 0 && freq_ghz > 0, "bad DRAM parameters");
    // GB/s divided by Gcycles/s gives bytes per core cycle.
    bytesPerCycle_ = peakGBs_ / freqGHz_;
}

double
DramModel::bytesToCycles(uint64_t bytes) const
{
    return static_cast<double>(bytes) / bytesPerCycle_;
}

double
DramModel::demandGBs(uint64_t bytes, double cycles) const
{
    if (cycles <= 0.0) {
        return 0.0;
    }
    const double seconds = cycles / (freqGHz_ * 1e9);
    return static_cast<double>(bytes) / 1e9 / seconds;
}

double
DramModel::occupancy(double demand_gbs) const
{
    return demand_gbs / peakGBs_;
}

bool
DramModel::congested(double demand_gbs) const
{
    return occupancy(demand_gbs) > kCongestionThreshold;
}

}  // namespace recstack
