#include "uarch/cpu_model.h"

#include <algorithm>
#include <cmath>

namespace recstack {
namespace {

/// Fraction of the nominal miss latency a demand stream actually
/// exposes, by pattern: hardware prefetchers hide most sequential
/// latency, some strided latency, and none of the random-gather
/// latency (the paper's irregular-embedding-access regime).
double
patternExposure(AccessPattern pattern, const CpuConfig& cfg)
{
    switch (pattern) {
      case AccessPattern::kSequential: return cfg.seqMissExposure;
      case AccessPattern::kStrided: return cfg.stridedMissExposure;
      case AccessPattern::kRandom: return 1.0;
    }
    return 1.0;
}

/// L1I miss service latency exposure: fetch bubbles overlap decode
/// only partially.
constexpr double kIcacheExposure = 0.7;

/// Shared framework-dispatch code region and its walk fractions.
constexpr uint64_t kSharedDispatchBytes = 16 * 1024;
constexpr double kSharedWalkOnSwitch = 0.30;
constexpr double kSharedWalkOnRepeat = 0.05;

/// Per-operator-type dispatch glue (type dispatch, shape checks,
/// allocator specialization): walked fully on an op-type switch,
/// mostly resident when the same type repeats back-to-back. This is
/// what separates NCF/DIN (type-alternating graphs) from RM1/RM2
/// (long runs of identical SparseLengthsSum ops).
constexpr uint64_t kTypeGlueBytes = 6 * 1024;
constexpr double kGlueWalkOnSwitch = 1.0;
constexpr double kGlueWalkOnRepeat = 0.10;

/// A kernel whose code footprint exceeds this fraction of the L1I
/// self-thrashes across its own iterations.
constexpr double kIcacheResidencyFraction = 0.8;

/// Average x86 instruction bytes per fused uop (footprint lowering).
constexpr double kBytesPerUop = 4.0;

}  // namespace

CpuModel::CpuModel(const CpuConfig& cfg, uint64_t seed)
    : cfg_(cfg), dcache_(cfg),
      icache_(cfg.l1i.sizeBytes, cfg.l1i.ways),
      bp_(cfg.bpTableBits, cfg.bpHistoryBits),
      decoder_(cfg), ports_(cfg),
      dram_(cfg.dramGBs, cfg.dramLatencyCycles, cfg.freqGHz),
      rng_(seed)
{
}

void
CpuModel::reset()
{
    dcache_.reset();
    icache_.reset();
    bp_.reset();
    lastOpType_.clear();
    // Region assignments persist: addresses are identities.
}

uint64_t
CpuModel::regionBase(const std::string& name, uint64_t footprint)
{
    auto it = regions_.find(name);
    if (it != regions_.end()) {
        if (it->second.second >= footprint) {
            return it->second.first;
        }
        // Region grew (e.g. batch-dependent activation): reallocate.
        regions_.erase(it);
    }
    const uint64_t base = nextBase_;
    const uint64_t aligned = (footprint + 4095) & ~4095ull;
    nextBase_ += aligned + 4096;  // guard page
    regions_[name] = {base, footprint};
    return base;
}

UopMix
CpuModel::lowerUops(const KernelProfile& kp) const
{
    const uint64_t lanes = static_cast<uint64_t>(cfg_.simdLanes32());
    const uint64_t simd_bytes = lanes * 4;

    UopMix mix;
    mix.fma = (kp.fmaFlops + 2 * lanes - 1) / (2 * lanes);
    mix.vec = (kp.vecElemOps + lanes - 1) / lanes;
    // Loop bookkeeping of vectorized loops shrinks with lane width
    // (the reference op counts are calibrated at 8 lanes / AVX-2).
    const double simd_scale = 8.0 / static_cast<double>(lanes);
    mix.scalar = kp.scalarOps + kp.dispatchOps +
                 static_cast<uint64_t>(
                     static_cast<double>(kp.simdScalableOps) * simd_scale);
    mix.branch = 0;
    for (const auto& b : kp.branches) {
        mix.branch += b.scalesWithSimd
                          ? static_cast<uint64_t>(
                                static_cast<double>(b.count) * simd_scale)
                          : b.count;
    }

    // Register-blocked operand reloads: vector loads from L1-resident
    // tiles (port pressure + retired AVX uops, no cache traffic).
    const uint64_t reload = kp.reloadLoadElems / lanes;
    mix.load += reload;
    mix.vecMem += reload;

    for (const auto& s : kp.streams) {
        uint64_t per_chunk;
        bool is_vector;
        if (s.chunkBytes >= 32) {
            per_chunk = (s.chunkBytes + simd_bytes - 1) / simd_bytes;
            is_vector = true;
        } else {
            per_chunk = 1;
            is_vector = false;
        }
        const uint64_t uops = s.accesses * per_chunk;
        if (s.isWrite) {
            mix.store += uops;
        } else {
            mix.load += uops;
        }
        if (is_vector) {
            mix.vecMem += uops;
        }
    }
    return mix;
}

CpuModel::StreamOut
CpuModel::simulateStream(const MemStream& s)
{
    StreamOut out;
    if (s.accesses == 0 || s.footprintBytes == 0) {
        return out;
    }

    const uint64_t base = regionBase(s.region, s.footprintBytes);
    const uint64_t sim = std::min(s.accesses, kMaxStreamSample);
    const double scale = static_cast<double>(s.accesses) /
                         static_cast<double>(sim);
    const uint64_t lines_per_chunk = (s.chunkBytes + 63) / 64;
    const uint64_t chunks =
        std::max<uint64_t>(1, s.footprintBytes / std::max<uint64_t>(
                                  1, s.chunkBytes));

    // Chunk selection state.
    uint64_t seq_start = 0;
    if (s.pattern != AccessPattern::kRandom) {
        seq_start = rng_.nextBounded(chunks);
    }
    // One sampler for every random stream: the sampler itself falls
    // back to the identical uniform nextBounded draw at exponent 0.
    const ZipfSampler chunk_zipf(
        chunks,
        s.pattern == AccessPattern::kRandom ? s.zipfExponent : 0.0);

    uint64_t raw_l1 = 0, raw_l2 = 0, raw_l3 = 0, raw_dram = 0;
    for (uint64_t i = 0; i < sim; ++i) {
        uint64_t chunk_idx;
        switch (s.pattern) {
          case AccessPattern::kSequential:
            chunk_idx = (seq_start + i) % chunks;
            break;
          case AccessPattern::kStrided: {
            const uint64_t stride_chunks =
                std::max<uint64_t>(1, s.strideBytes /
                                       std::max<uint64_t>(1, s.chunkBytes));
            chunk_idx = (seq_start + i * stride_chunks) % chunks;
            break;
          }
          case AccessPattern::kRandom:
          default:
            chunk_idx = chunk_zipf.sample(rng_);
            break;
        }
        const uint64_t addr = base + chunk_idx * s.chunkBytes;
        for (uint64_t l = 0; l < lines_per_chunk; ++l) {
            switch (dcache_.access(addr + l * 64, s.isWrite)) {
              case HitLevel::kL1: ++raw_l1; break;
              case HitLevel::kL2: ++raw_l2; break;
              case HitLevel::kL3: ++raw_l3; break;
              case HitLevel::kDram: ++raw_dram; break;
            }
        }
    }

    auto scaled = [scale](uint64_t v) {
        return static_cast<uint64_t>(std::llround(
            static_cast<double>(v) * scale));
    };
    out.l1 = scaled(raw_l1);
    out.l2 = scaled(raw_l2);
    out.l3 = scaled(raw_l3);
    out.dram = scaled(raw_dram);
    out.dramBytes = out.dram * 64;

    const double exposure = patternExposure(s.pattern, cfg_);
    const double mlp = std::max(1.0, s.mlp);
    out.stallL2 = static_cast<double>(out.l2) *
                  cfg_.l2.latencyCycles * exposure / mlp;
    out.stallL3 = static_cast<double>(out.l3) *
                  cfg_.l3.latencyCycles * exposure / mlp;
    out.stallDram = static_cast<double>(out.dram) *
                    cfg_.dramLatencyCycles * exposure / mlp;
    return out;
}

void
CpuModel::walkCode(const std::string& region, uint64_t bytes,
                   double fraction, uint64_t* accesses, uint64_t* misses)
{
    if (bytes == 0 || fraction <= 0.0) {
        return;
    }
    const uint64_t base = regionBase("code:" + region, bytes);
    const uint64_t lines = (bytes + 63) / 64;
    const uint64_t walk =
        std::max<uint64_t>(1, static_cast<uint64_t>(
            static_cast<double>(lines) * std::min(1.0, fraction)));
    const uint64_t start = rng_.nextBounded(lines);
    for (uint64_t i = 0; i < walk; ++i) {
        const uint64_t line = (start + i) % lines;
        ++*accesses;
        if (!icache_.access(base + line * 64)) {
            ++*misses;
        }
    }
}

CpuCounters
CpuModel::simulateKernel(const KernelProfile& kp)
{
    CpuCounters c;

    // ---- 1. Lower work to this platform's micro-ops. ----
    const UopMix mix = lowerUops(kp);
    c.uopsRetired = mix.total();
    c.avxUopsRetired = mix.avx();
    c.scalarUopsRetired = mix.scalar;
    c.branches = mix.branch;

    // ---- 2. Data-side memory simulation. ----
    double stall_l2 = 0.0, stall_l3 = 0.0, stall_dram_lat = 0.0;
    for (const auto& s : kp.streams) {
        const StreamOut so = simulateStream(s);
        c.l1dAccesses += so.l1 + so.l2 + so.l3 + so.dram;
        c.l1dHits += so.l1;
        c.l2Hits += so.l2;
        c.l3Hits += so.l3;
        c.dramAccesses += so.dram;
        c.dramBytes += so.dramBytes;
        stall_l2 += so.stallL2;
        stall_l3 += so.stallL3;
        stall_dram_lat += so.stallDram;
    }

    // ---- 3. Branch prediction. ----
    double mispredicts = 0.0;
    int stream_idx = 0;
    for (const auto& b : kp.branches) {
        if (b.count == 0) {
            continue;
        }
        const uint64_t pc_base = regionBase(
            "branch:" + kp.opName + ":" + std::to_string(stream_idx++),
            256);
        const BranchSimResult br =
            simulateBranchStream(bp_, b, pc_base, rng_, kMaxBranchSample,
                                 cfg_.bpLoopPredictor);
        const double simd_scale =
            8.0 / static_cast<double>(cfg_.simdLanes32());
        const double dynamic_count =
            b.scalesWithSimd
                ? static_cast<double>(b.count) * simd_scale
                : static_cast<double>(b.count);
        mispredicts += br.mispredictRate() * dynamic_count;
    }
    c.branchMispredicts = static_cast<uint64_t>(std::llround(mispredicts));

    // ---- 4. Instruction side: kernel region + dispatch paths. ----
    const bool type_switch = kp.opType != lastOpType_;
    lastOpType_ = kp.opType;
    uint64_t iacc = 0, imiss = 0;
    if (kp.dispatchCodeBytes > 0) {
        walkCode("dispatch:shared",
                 std::max(kp.dispatchCodeBytes, kSharedDispatchBytes),
                 type_switch ? kSharedWalkOnSwitch : kSharedWalkOnRepeat,
                 &iacc, &imiss);
        walkCode("dispatch:" + kp.opType, kTypeGlueBytes,
                 type_switch ? kGlueWalkOnSwitch : kGlueWalkOnRepeat,
                 &iacc, &imiss);
    }
    double extra_misses = 0.0;
    if (kp.codeFootprintBytes > 0 && !kp.codeRegion.empty()) {
        walkCode(kp.codeRegion, kp.codeFootprintBytes, 1.0, &iacc, &imiss);
        // Iterations beyond the first re-fetch the loop body; it only
        // misses if the body does not fit the L1I.
        const double resident_limit =
            kIcacheResidencyFraction *
            static_cast<double>(cfg_.l1i.sizeBytes);
        if (static_cast<double>(kp.codeFootprintBytes) > resident_limit &&
            kp.codeIterations > 1) {
            const double miss_rate =
                1.0 - resident_limit /
                          static_cast<double>(kp.codeFootprintBytes);
            const double lines =
                static_cast<double>((kp.codeFootprintBytes + 63) / 64);
            extra_misses = miss_rate * lines *
                           static_cast<double>(kp.codeIterations - 1);
        }
    }
    c.icacheAccesses = iacc;
    c.icacheMisses =
        imiss + static_cast<uint64_t>(std::llround(extra_misses));

    // ---- 5. Frontend decoder. ----
    DecoderInput din;
    din.kernelUops = c.uopsRetired > kp.dispatchOps
                         ? c.uopsRetired - kp.dispatchOps
                         : 0;
    din.kernelFootprintUops = static_cast<uint64_t>(
        static_cast<double>(kp.codeFootprintBytes) / kBytesPerUop);
    din.dispatchUops = kp.dispatchOps;
    din.flushes = c.branchMispredicts;
    din.dispatchWarm = !type_switch;
    const DecoderResult dr = decoder_.evaluate(din);
    c.uopsFromDsb = dr.uopsFromDsb;
    c.uopsFromMite = dr.uopsFromMite;
    c.dsbSwitches = dr.switches;

    // ---- 6. Execution ports. ----
    PortInput pin;
    pin.fmaUops = mix.fma;
    pin.vecUops = mix.vec;
    pin.scalarUops = mix.scalar;
    pin.branchUops = mix.branch;
    pin.loadUops = mix.load;
    pin.storeUops = mix.store;
    const PortResult pr = ports_.schedule(pin);

    // ---- 7. Cycle assembly (TopDown-conserving). ----
    const double width = static_cast<double>(cfg_.pipelineWidth);
    c.retireCycles = static_cast<double>(c.uopsRetired) / width;
    c.feLatencyCycles = static_cast<double>(c.icacheMisses) *
                        cfg_.l2.latencyCycles * kIcacheExposure;
    c.feBandwidthDsbCycles = dr.dsbLimitedCycles;
    c.feBandwidthMiteCycles = dr.miteLimitedCycles;
    c.badSpecCycles = static_cast<double>(c.branchMispredicts) *
                      cfg_.mispredictPenalty;
    c.beCoreCycles = std::max(0.0, pr.computeCycles - c.retireCycles);
    c.beMemL2Cycles = stall_l2;
    c.beMemL3Cycles = stall_l3;

    // DRAM: latency-or-bandwidth, whichever dominates.
    const double bw_cycles = dram_.bytesToCycles(c.dramBytes);
    if (bw_cycles > stall_dram_lat) {
        c.beMemDramLatCycles = stall_dram_lat;
        c.beMemDramBwCycles = bw_cycles - stall_dram_lat;
    } else {
        c.beMemDramLatCycles = stall_dram_lat;
        c.beMemDramBwCycles = 0.0;
    }

    c.cycles = c.retireCycles + c.feCycles() + c.badSpecCycles +
               c.beCoreCycles + c.beMemCycles();

    // Intel congestion criterion: the off-core read queue is occupied
    // beyond 70% of its depth. Average outstanding requests follow
    // from Little's law: arrivals/cycle x service latency.
    if (c.cycles > 0.0) {
        const double inflight =
            static_cast<double>(c.dramAccesses) *
            static_cast<double>(cfg_.dramLatencyCycles) / c.cycles;
        const double occupancy =
            inflight / static_cast<double>(cfg_.offcoreQueueDepth);
        if (occupancy > DramModel::kCongestionThreshold) {
            c.dramCongestedCycles = c.cycles * std::min(1.0, occupancy);
        }
    }

    // ---- 8. Functional-unit usage distribution. ----
    PortScheduler::busyDistribution(pr, c.cycles, c.portsBusyAtLeast);
    return c;
}

}  // namespace recstack
