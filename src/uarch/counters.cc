#include "uarch/counters.h"

namespace recstack {

void
CpuCounters::accumulate(const CpuCounters& other)
{
    uopsRetired += other.uopsRetired;
    avxUopsRetired += other.avxUopsRetired;
    scalarUopsRetired += other.scalarUopsRetired;
    branches += other.branches;
    branchMispredicts += other.branchMispredicts;
    l1dAccesses += other.l1dAccesses;
    l1dHits += other.l1dHits;
    l2Hits += other.l2Hits;
    l3Hits += other.l3Hits;
    dramAccesses += other.dramAccesses;
    dramBytes += other.dramBytes;
    icacheAccesses += other.icacheAccesses;
    icacheMisses += other.icacheMisses;
    uopsFromDsb += other.uopsFromDsb;
    uopsFromMite += other.uopsFromMite;
    dsbSwitches += other.dsbSwitches;

    // Port-busy distribution: cycle-weighted average.
    const double total = cycles + other.cycles;
    if (total > 0.0) {
        for (int k = 0; k <= 8; ++k) {
            portsBusyAtLeast[k] =
                (portsBusyAtLeast[k] * cycles +
                 other.portsBusyAtLeast[k] * other.cycles) / total;
        }
    }

    cycles += other.cycles;
    retireCycles += other.retireCycles;
    feLatencyCycles += other.feLatencyCycles;
    feBandwidthDsbCycles += other.feBandwidthDsbCycles;
    feBandwidthMiteCycles += other.feBandwidthMiteCycles;
    badSpecCycles += other.badSpecCycles;
    beCoreCycles += other.beCoreCycles;
    beMemL2Cycles += other.beMemL2Cycles;
    beMemL3Cycles += other.beMemL3Cycles;
    beMemDramLatCycles += other.beMemDramLatCycles;
    beMemDramBwCycles += other.beMemDramBwCycles;
    dramCongestedCycles += other.dramCongestedCycles;
    storeCycles += other.storeCycles;
}

double
CpuCounters::ipc(int width) const
{
    (void)width;
    return cycles > 0.0 ? static_cast<double>(uopsRetired) / cycles : 0.0;
}

double
CpuCounters::imspki() const
{
    if (uopsRetired == 0) {
        return 0.0;
    }
    return 1000.0 * static_cast<double>(icacheMisses) /
           static_cast<double>(uopsRetired);
}

double
CpuCounters::mispredictsPerKuop() const
{
    if (uopsRetired == 0) {
        return 0.0;
    }
    return 1000.0 * static_cast<double>(branchMispredicts) /
           static_cast<double>(uopsRetired);
}

}  // namespace recstack
