#ifndef RECSTACK_UARCH_EXEC_PORTS_H_
#define RECSTACK_UARCH_EXEC_PORTS_H_

/**
 * @file
 * Execution-port scheduler for the 8-port backend the paper describes
 * ("four arithmetic units, two load units, and two store units",
 * Fig. 10). Micro-ops are water-filled onto their eligible ports;
 * the resulting per-port loads give both the core-bound throughput
 * limit and the functional-unit-usage distribution.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "platform/platform.h"

namespace recstack {

/** Micro-op mix of one kernel, by port class. */
struct PortInput {
    uint64_t fmaUops = 0;     ///< vector FMA: ports 0-1 only
    uint64_t vecUops = 0;     ///< other vector ALU: ports 0, 1, 5
    uint64_t scalarUops = 0;  ///< scalar ALU: ports 0, 1, 5, 6
    uint64_t branchUops = 0;  ///< port 6 (+ port 0 on these parts)
    uint64_t loadUops = 0;    ///< ports 2, 3
    uint64_t storeUops = 0;   ///< ports 4, 7
};

/** Port-pressure summary. */
struct PortResult {
    /// Minimum cycles the port bindings allow (max per-port load).
    double computeCycles = 0.0;
    /// Dynamic uops bound to each of the 8 ports.
    std::array<double, 8> portLoad{};

    double totalPortUops() const;
};

/** Greedy water-filling port binder. */
class PortScheduler
{
  public:
    explicit PortScheduler(const CpuConfig& cfg);

    PortResult schedule(const PortInput& input) const;

    /**
     * Fraction of cycles with at least k of the 8 ports busy,
     * assuming independent per-port utilization (Poisson-binomial),
     * given the actual cycle count of the kernel.
     * @param at_least output array[9]: index k holds P(busy >= k).
     */
    static void busyDistribution(const PortResult& r, double cycles,
                                 double* at_least);

  private:
    int width_;
    int fpAddPorts_;
    std::vector<int> fmaPorts_;
    std::vector<int> loadPorts_;
    std::vector<int> storePorts_;
};

}  // namespace recstack

#endif  // RECSTACK_UARCH_EXEC_PORTS_H_
