#include "uarch/branch_predictor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace recstack {

GsharePredictor::GsharePredictor(int table_bits, int history_bits)
    : tableBits_(table_bits), historyBits_(history_bits)
{
    RECSTACK_CHECK(table_bits > 0 && table_bits < 30, "bad table bits");
    RECSTACK_CHECK(history_bits >= 0 && history_bits <= 62,
                   "bad history bits");
    historyMask_ = (1ull << historyBits_) - 1;
    table_.assign(1ull << tableBits_, 2);  // weakly taken
}

uint64_t
GsharePredictor::index(uint64_t pc) const
{
    const uint64_t mask = (1ull << tableBits_) - 1;
    return ((pc >> 2) ^ history_) & mask;
}

bool
GsharePredictor::predict(uint64_t pc) const
{
    return table_[index(pc)] >= 2;
}

bool
GsharePredictor::predictAndUpdate(uint64_t pc, bool taken)
{
    const uint64_t idx = index(pc);
    const bool predicted = table_[idx] >= 2;
    if (taken && table_[idx] < 3) {
        ++table_[idx];
    } else if (!taken && table_[idx] > 0) {
        --table_[idx];
    }
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & historyMask_;
    return predicted != taken;
}

void
GsharePredictor::reset()
{
    std::fill(table_.begin(), table_.end(), static_cast<uint8_t>(2));
    history_ = 0;
}

BranchSimResult
simulateBranchStream(GsharePredictor& bp, const BranchStream& stream,
                     uint64_t pc_base, Rng& rng, uint64_t max_sim,
                     bool loop_predictor)
{
    BranchSimResult result;
    if (stream.count == 0) {
        return result;
    }
    const uint64_t n = std::min(stream.count, max_sim);
    result.simulated = n;

    // Deterministic component: a loop that is taken (period-1)-of-
    // period times, matching the stream's long-run bias.
    const double p = std::clamp(stream.takenProbability, 0.0, 1.0);
    uint64_t period = 0;
    if (p < 1.0 && p >= 0.5) {
        period = static_cast<uint64_t>(std::lround(1.0 / (1.0 - p)));
    } else if (p < 0.5 && p > 0.0) {
        period = static_cast<uint64_t>(std::lround(1.0 / p));
    }

    // A branch group is a handful of static branch sites.
    constexpr int kSites = 4;

    for (uint64_t i = 0; i < n; ++i) {
        bool taken;
        bool patterned = false;
        if (rng.nextBool(stream.randomness)) {
            taken = rng.nextBool(p);
        } else {
            patterned = true;
            if (period == 0) {
                taken = p >= 0.5;
            } else if (p >= 0.5) {
                taken = (i % period) != 0;
            } else {
                taken = (i % period) == 0;
            }
        }
        const uint64_t pc =
            pc_base + 16 * (i % static_cast<uint64_t>(kSites));
        const bool gshare_wrong = bp.predictAndUpdate(pc, taken);
        // The loop side-predictor captures the deterministic periodic
        // component once it has seen a full period.
        const bool covered =
            loop_predictor && patterned && i >= period;
        if (gshare_wrong && !covered) {
            ++result.mispredicts;
        }
    }
    return result;
}

}  // namespace recstack
