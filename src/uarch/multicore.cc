#include "uarch/multicore.h"

#include <algorithm>

#include "common/logging.h"

namespace recstack {

std::vector<ScalingPoint>
estimateMulticoreScaling(const CpuCounters& single, const CpuConfig& cfg,
                         int max_cores)
{
    RECSTACK_CHECK(max_cores >= 1, "need at least one core");
    RECSTACK_CHECK(single.cycles > 0.0, "empty single-core counters");

    // Cycle components that use only private resources.
    const double private_cycles =
        single.retireCycles + single.feCycles() + single.badSpecCycles +
        single.beCoreCycles + single.beMemL2Cycles;
    const double l3_stall = single.beMemL3Cycles;
    const double dram_stall =
        single.beMemDramLatCycles + single.beMemDramBwCycles;
    const double bytes_per_cycle = cfg.dramGBs / cfg.freqGHz;

    // Average observed stall per L3 hit (already folds exposure and
    // MLP); re-pricing a lost hit at DRAM scales it by the latency
    // ratio.
    const double per_l3_hit_stall =
        single.l3Hits > 0
            ? l3_stall / static_cast<double>(single.l3Hits)
            : 0.0;
    const double dram_per_l3_ratio =
        static_cast<double>(cfg.dramLatencyCycles) /
        static_cast<double>(std::max(1, cfg.l3.latencyCycles));

    // Phase demand of a single engine running alone; used to
    // normalize so n = 1 is exactly the identity even when one
    // engine's burst demand already brushes the peak.
    const double solo_phase_demand =
        dram_stall > 0.0
            ? static_cast<double>(single.dramBytes) /
                  (bytes_per_cycle * dram_stall)
            : 0.0;
    const double demand_norm = std::max(1.0, solo_phase_demand);

    std::vector<ScalingPoint> points;
    points.reserve(static_cast<size_t>(max_cores));
    for (int n = 1; n <= max_cores; ++n) {
        // Shared-L3 partitioning: with 1/n of the capacity, roughly
        // the hottest 1/n of the reuse survives.
        const double survive = 1.0 / static_cast<double>(n);
        const double lost_hits =
            static_cast<double>(single.l3Hits) * (1.0 - survive);
        const double kept_l3_stall = l3_stall * survive;
        const double moved_stall =
            lost_hits * per_l3_hit_stall * dram_per_l3_ratio;

        const double dram_bytes_n =
            static_cast<double>(single.dramBytes) + lost_hits * 64.0;
        const double base_dram_stall = dram_stall + moved_stall;

        // Bandwidth contention acts while the memory system is
        // actively serving this engine: an engine's instantaneous
        // demand is its DRAM bytes over its memory-stall window, not
        // over the whole run. When the n engines' aggregate phase
        // demand exceeds the socket peak, the memory phases stretch
        // proportionally (bytes are conserved; service rate is
        // capped).
        double stretch = 1.0;
        if (base_dram_stall > 0.0) {
            const double phase_demand =
                static_cast<double>(n) * dram_bytes_n /
                (bytes_per_cycle * base_dram_stall);
            stretch = std::max(1.0, phase_demand / demand_norm);
        }
        const double cycles_n = private_cycles + kept_l3_stall +
                                base_dram_stall * stretch;

        ScalingPoint p;
        p.cores = n;
        p.perEngineSlowdown = cycles_n / single.cycles;
        p.throughputScaling =
            static_cast<double>(n) * single.cycles / cycles_n;
        p.dramDemandFraction = static_cast<double>(n) * dram_bytes_n /
                               (bytes_per_cycle * cycles_n);
        points.push_back(p);
    }
    return points;
}

}  // namespace recstack
