#ifndef RECSTACK_UARCH_DRAM_H_
#define RECSTACK_UARCH_DRAM_H_

/**
 * @file
 * DRAM channel model: peak-bandwidth/latency accounting plus Intel's
 * bandwidth-congestion criterion (Fig. 14): the system is "bandwidth
 * congested" when demand occupies more than 70% of what the memory
 * controller can serve, and "latency bound" below that.
 */

#include <cstdint>

namespace recstack {

/** Simple bandwidth/latency DRAM model. */
class DramModel
{
  public:
    /**
     * @param peak_gbs   peak bandwidth, GB/s
     * @param latency_cycles loaded round-trip latency in core cycles
     * @param freq_ghz   core frequency the cycle domain refers to
     */
    DramModel(double peak_gbs, int latency_cycles, double freq_ghz);

    /** Core cycles to move @c bytes at peak bandwidth. */
    double bytesToCycles(uint64_t bytes) const;

    /** Bytes the channel can move per core cycle. */
    double bytesPerCycle() const { return bytesPerCycle_; }

    int latencyCycles() const { return latencyCycles_; }

    /** Demand bandwidth (GB/s) given bytes moved over cycles. */
    double demandGBs(uint64_t bytes, double cycles) const;

    /** Occupancy fraction of peak for the given demand. */
    double occupancy(double demand_gbs) const;

    /** Intel's >70% read-queue-occupancy congestion criterion. */
    bool congested(double demand_gbs) const;

    static constexpr double kCongestionThreshold = 0.70;

  private:
    double peakGBs_;
    int latencyCycles_;
    double freqGHz_;
    double bytesPerCycle_;
};

}  // namespace recstack

#endif  // RECSTACK_UARCH_DRAM_H_
