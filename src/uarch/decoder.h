#ifndef RECSTACK_UARCH_DECODER_H_
#define RECSTACK_UARCH_DECODER_H_

/**
 * @file
 * Frontend decoder model: the DSB (Decoded Stream Buffer, the decoded
 * micro-op cache) versus the MITE legacy decode pipeline (Fig. 13).
 *
 * Micro-ops are delivered from the DSB at full width when the hot
 * region fits its capacity; region overflow and branch-mispredict
 * flushes push decode back through the slower MITE and pay a
 * DSB<->MITE switch penalty. Cold code (the framework dispatch path)
 * always decodes through MITE.
 */

#include <cstdint>

#include "platform/platform.h"

namespace recstack {

/** One kernel's decoder workload. */
struct DecoderInput {
    uint64_t kernelUops = 0;         ///< hot-region dynamic uops
    uint64_t kernelFootprintUops = 0;///< hot-region static uops
    uint64_t dispatchUops = 0;       ///< framework-path uops
    uint64_t flushes = 0;            ///< branch-mispredict pipeline flushes
    /// True when the previous operator had the same type: the
    /// dispatch path is then largely DSB-resident (long runs of
    /// identical SparseLengthsSum ops), false on a type switch
    /// (NCF/DIN-style alternating graphs decode cold).
    bool dispatchWarm = false;
};

/** Decoder delivery accounting. */
struct DecoderResult {
    uint64_t uopsFromDsb = 0;
    uint64_t uopsFromMite = 0;
    uint64_t switches = 0;
    /// Cycles lost because DSB thrash (capacity overflow, flush
    /// refill) forced MITE decode — the paper's "DSB-limited" bucket.
    double dsbLimitedCycles = 0.0;
    /// Cycles lost to steady-state MITE decode of cold code.
    double miteLimitedCycles = 0.0;
};

/** Analytic DSB/MITE delivery model. */
class DecoderModel
{
  public:
    explicit DecoderModel(const CpuConfig& cfg);

    DecoderResult evaluate(const DecoderInput& input) const;

  private:
    /// Cycle cost per uop delivered via MITE instead of keeping the
    /// pipeline fed at full width.
    double mitePenaltyPerUop_;
    uint64_t capacityUops_;
    int switchPenalty_;
    int refillUopsPerFlush_;
};

}  // namespace recstack

#endif  // RECSTACK_UARCH_DECODER_H_
