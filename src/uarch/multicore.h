#ifndef RECSTACK_UARCH_MULTICORE_H_
#define RECSTACK_UARCH_MULTICORE_H_

/**
 * @file
 * Multicore co-location model (beyond-paper extension).
 *
 * The paper characterizes single-threaded inference; production
 * serving co-locates one inference engine per core (DeepRecSys).
 * This analytical model extends a measured single-core cycle account
 * to N co-located engines on one socket:
 *
 *  - private resources (frontend, ports, L1/L2, speculation) scale
 *    perfectly — their cycle components are unchanged per engine;
 *  - the shared L3 is effectively partitioned: each engine's L3 hits
 *    degrade to DRAM accesses as its share of the L3 shrinks below
 *    its single-core working set;
 *  - DRAM bandwidth is shared: when the engines' aggregate demand
 *    exceeds the socket's peak, memory-bandwidth stalls stretch
 *    proportionally.
 *
 * The headline result mirrors the near-memory-processing motivation
 * the paper cites: embedding-dominated models stop scaling well
 * before FC-dominated models do.
 */

#include <vector>

#include "platform/platform.h"
#include "uarch/counters.h"

namespace recstack {

/** Scaling estimate for one co-location level. */
struct ScalingPoint {
    int cores = 1;
    /// Per-engine slowdown vs running alone (>= 1).
    double perEngineSlowdown = 1.0;
    /// Socket throughput relative to one engine (<= cores).
    double throughputScaling = 1.0;
    /// Aggregate DRAM demand as a fraction of the socket peak.
    double dramDemandFraction = 0.0;
};

/**
 * Estimate throughput scaling of co-located copies of the engine
 * whose single-core counters are given.
 *
 * @param single   counters of one engine running alone (one
 *                 inference, steady state)
 * @param cfg      socket configuration
 * @param max_cores highest co-location level to evaluate
 */
std::vector<ScalingPoint> estimateMulticoreScaling(
    const CpuCounters& single, const CpuConfig& cfg, int max_cores);

}  // namespace recstack

#endif  // RECSTACK_UARCH_MULTICORE_H_
