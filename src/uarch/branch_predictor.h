#ifndef RECSTACK_UARCH_BRANCH_PREDICTOR_H_
#define RECSTACK_UARCH_BRANCH_PREDICTOR_H_

/**
 * @file
 * Gshare branch predictor: global history XOR PC indexing a table of
 * 2-bit saturating counters. Broadwell and Cascade Lake differ in
 * table size, history length and redirect penalty (platform config),
 * carrying the paper's observed bad-speculation reduction (Fig. 15).
 */

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "profile/kernel_profile.h"

namespace recstack {

/** Gshare predictor with 2-bit counters. */
class GsharePredictor
{
  public:
    GsharePredictor(int table_bits, int history_bits);

    /** Predicted direction for the branch at @c pc. */
    bool predict(uint64_t pc) const;

    /** Train with the resolved outcome; returns true on mispredict. */
    bool predictAndUpdate(uint64_t pc, bool taken);

    void reset();

    int tableBits() const { return tableBits_; }
    int historyBits() const { return historyBits_; }

  private:
    uint64_t index(uint64_t pc) const;

    int tableBits_;
    int historyBits_;
    uint64_t history_ = 0;
    uint64_t historyMask_;
    std::vector<uint8_t> table_;
};

/** Outcome of simulating (a sample of) one BranchStream. */
struct BranchSimResult {
    uint64_t simulated = 0;
    uint64_t mispredicts = 0;

    double mispredictRate() const
    {
        return simulated ? static_cast<double>(mispredicts) /
                           static_cast<double>(simulated)
                         : 0.0;
    }
};

/**
 * Drive a synthetic outcome stream through the predictor.
 *
 * Outcomes mix a deterministic loop pattern (period derived from the
 * taken probability) with i.i.d. draws according to the stream's
 * @c randomness, reproducing the well-predicted-GEMM-loop vs
 * data-dependent-embedding-segment dichotomy the paper reports.
 *
 * @param pc_base  stable identity of the branch group
 * @param max_sim  cap on simulated branches (results are rates)
 * @param loop_predictor model a loop-pattern side predictor (newer
 *        microarchitectures): deterministic periodic outcomes are
 *        predicted correctly after one warmup period.
 */
BranchSimResult simulateBranchStream(GsharePredictor& bp,
                                     const BranchStream& stream,
                                     uint64_t pc_base, Rng& rng,
                                     uint64_t max_sim = 2048,
                                     bool loop_predictor = false);

}  // namespace recstack

#endif  // RECSTACK_UARCH_BRANCH_PREDICTOR_H_
