#ifndef RECSTACK_UARCH_CACHE_H_
#define RECSTACK_UARCH_CACHE_H_

/**
 * @file
 * Set-associative cache with true-LRU replacement. Used for L1D, L2,
 * L3 and L1I in the microarchitecture simulator. Tag-only (no data):
 * the simulator cares about hit/miss behaviour, not contents.
 */

#include <cstdint>
#include <vector>

namespace recstack {

/** Tag-only set-associative LRU cache. */
class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param ways       associativity
     * @param line_bytes line size (64 everywhere in this project)
     */
    Cache(uint64_t size_bytes, int ways, int line_bytes = 64);

    /**
     * Access the line containing @c addr.
     * @return true on hit. On miss the line is filled (allocate), and
     *         if a victim was evicted its address is stored in
     *         @c evicted (used for inclusive back-invalidation).
     */
    bool access(uint64_t addr, uint64_t* evicted = nullptr);

    /** True if the line is present (no LRU update, no fill). */
    bool probe(uint64_t addr) const;

    /** Insert without lookup (exclusive-hierarchy victim fill). */
    void insert(uint64_t addr, uint64_t* evicted = nullptr);

    /** Remove the line if present (back-invalidation). */
    void invalidate(uint64_t addr);

    /** Drop all contents. */
    void reset();

    uint64_t sizeBytes() const { return sizeBytes_; }
    int ways() const { return ways_; }
    int lineBytes() const { return lineBytes_; }
    uint64_t sets() const { return sets_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Line {
        uint64_t tag = 0;
        uint64_t lru = 0;   // larger = more recent
        bool valid = false;
    };

    uint64_t setIndex(uint64_t addr) const;
    uint64_t tagOf(uint64_t addr) const;
    uint64_t lineAddr(uint64_t tag, uint64_t set) const;

    uint64_t sizeBytes_;
    int ways_;
    int lineBytes_;
    int lineShift_;
    uint64_t sets_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    std::vector<Line> lines_;   // sets_ * ways_, set-major
};

}  // namespace recstack

#endif  // RECSTACK_UARCH_CACHE_H_
