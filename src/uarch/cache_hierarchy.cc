#include "uarch/cache_hierarchy.h"

namespace recstack {

CacheHierarchy::CacheHierarchy(const CpuConfig& cfg)
    : l1_(cfg.l1d.sizeBytes, cfg.l1d.ways),
      l2_(cfg.l2.sizeBytes, cfg.l2.ways),
      l3_(cfg.l3.sizeBytes, cfg.l3.ways),
      policy_(cfg.l3Policy)
{
}

HitLevel
CacheHierarchy::access(uint64_t addr, bool is_write)
{
    // Write-allocate, writeback: writes behave like reads for tag
    // movement purposes.
    (void)is_write;

    if (l1_.access(addr)) {
        return HitLevel::kL1;
    }
    uint64_t l2_victim = UINT64_MAX;
    if (l2_.access(addr, &l2_victim)) {
        return HitLevel::kL2;
    }

    if (policy_ == InclusionPolicy::kInclusive) {
        uint64_t l3_victim = UINT64_MAX;
        const bool l3_hit = l3_.access(addr, &l3_victim);
        if (!l3_hit && l3_victim != UINT64_MAX) {
            // Inclusive: an L3 eviction invalidates inner copies.
            l1_.invalidate(l3_victim);
            l2_.invalidate(l3_victim);
        }
        return l3_hit ? HitLevel::kL3 : HitLevel::kDram;
    }

    // Exclusive: L3 holds only L2 victims. The L2 allocate above
    // displaced l2_victim, which now moves into L3. On L3 hit the
    // line moves up to L2 and leaves L3.
    if (l2_victim != UINT64_MAX) {
        l3_.insert(l2_victim);
    }
    if (l3_.probe(addr)) {
        l3_.invalidate(addr);
        return HitLevel::kL3;
    }
    return HitLevel::kDram;
}

void
CacheHierarchy::reset()
{
    l1_.reset();
    l2_.reset();
    l3_.reset();
}

}  // namespace recstack
