#include "uarch/cache.h"

#include "common/logging.h"

namespace recstack {
namespace {

int
log2exact(uint64_t v)
{
    int shift = 0;
    while ((1ull << shift) < v) {
        ++shift;
    }
    RECSTACK_CHECK((1ull << shift) == v, "value " << v
                   << " is not a power of two");
    return shift;
}

}  // namespace

Cache::Cache(uint64_t size_bytes, int ways, int line_bytes)
    : sizeBytes_(size_bytes), ways_(ways), lineBytes_(line_bytes)
{
    RECSTACK_CHECK(ways_ > 0 && lineBytes_ > 0, "bad cache geometry");
    lineShift_ = log2exact(static_cast<uint64_t>(lineBytes_));
    sets_ = sizeBytes_ /
            (static_cast<uint64_t>(ways_) *
             static_cast<uint64_t>(lineBytes_));
    RECSTACK_CHECK(sets_ > 0, "cache smaller than one set");
    // Non-power-of-two set counts are allowed (22 MB L3s exist); the
    // index is taken modulo sets_.
    lines_.assign(sets_ * static_cast<uint64_t>(ways_), Line{});
}

uint64_t
Cache::setIndex(uint64_t addr) const
{
    return (addr >> lineShift_) % sets_;
}

uint64_t
Cache::tagOf(uint64_t addr) const
{
    return addr >> lineShift_;
}

uint64_t
Cache::lineAddr(uint64_t tag, uint64_t set) const
{
    (void)set;
    return tag << lineShift_;
}

bool
Cache::access(uint64_t addr, uint64_t* evicted)
{
    const uint64_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line* base = &lines_[set * static_cast<uint64_t>(ways_)];
    ++clock_;

    Line* lru_line = base;
    for (int w = 0; w < ways_; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = clock_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            lru_line = &line;  // prefer invalid victims
        } else if (lru_line->valid && line.lru < lru_line->lru) {
            lru_line = &line;
        }
    }
    ++misses_;
    if (evicted != nullptr) {
        *evicted = lru_line->valid ? lineAddr(lru_line->tag, set)
                                   : UINT64_MAX;
    }
    lru_line->valid = true;
    lru_line->tag = tag;
    lru_line->lru = clock_;
    return false;
}

bool
Cache::probe(uint64_t addr) const
{
    const uint64_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    const Line* base = &lines_[set * static_cast<uint64_t>(ways_)];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            return true;
        }
    }
    return false;
}

void
Cache::insert(uint64_t addr, uint64_t* evicted)
{
    const uint64_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line* base = &lines_[set * static_cast<uint64_t>(ways_)];
    ++clock_;

    Line* lru_line = base;
    for (int w = 0; w < ways_; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = clock_;
            return;  // already present
        }
        if (!line.valid) {
            lru_line = &line;
        } else if (lru_line->valid && line.lru < lru_line->lru) {
            lru_line = &line;
        }
    }
    if (evicted != nullptr) {
        *evicted = lru_line->valid ? lineAddr(lru_line->tag, set)
                                   : UINT64_MAX;
    }
    lru_line->valid = true;
    lru_line->tag = tag;
    lru_line->lru = clock_;
}

void
Cache::invalidate(uint64_t addr)
{
    const uint64_t set = setIndex(addr);
    const uint64_t tag = tagOf(addr);
    Line* base = &lines_[set * static_cast<uint64_t>(ways_)];
    for (int w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            return;
        }
    }
}

void
Cache::reset()
{
    for (auto& line : lines_) {
        line = Line{};
    }
    hits_ = misses_ = 0;
    clock_ = 0;
}

}  // namespace recstack
