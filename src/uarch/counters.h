#ifndef RECSTACK_UARCH_COUNTERS_H_
#define RECSTACK_UARCH_COUNTERS_H_

/**
 * @file
 * CpuCounters: the PMU-style raw counter set the CPU model produces.
 * Everything Figures 8-15 of the paper report derives from these.
 */

#include <cstdint>

namespace recstack {

/** Raw event counts accumulated over a simulated region. */
struct CpuCounters {
    // Retired work.
    uint64_t uopsRetired = 0;
    uint64_t avxUopsRetired = 0;     ///< vector ALU + vector memory uops
    uint64_t scalarUopsRetired = 0;

    // Branches.
    uint64_t branches = 0;
    uint64_t branchMispredicts = 0;

    // L1D / L2 / L3 / DRAM demand accesses (data side).
    uint64_t l1dAccesses = 0;
    uint64_t l1dHits = 0;
    uint64_t l2Hits = 0;
    uint64_t l3Hits = 0;
    uint64_t dramAccesses = 0;
    uint64_t dramBytes = 0;

    // Instruction side.
    uint64_t icacheAccesses = 0;
    uint64_t icacheMisses = 0;

    // Decoder delivery.
    uint64_t uopsFromDsb = 0;
    uint64_t uopsFromMite = 0;
    uint64_t dsbSwitches = 0;

    // Cycle accounting (derived during simulation, in cycles).
    double cycles = 0.0;
    double retireCycles = 0.0;        ///< uopsRetired / width
    double feLatencyCycles = 0.0;     ///< icache-miss driven fetch bubbles
    double feBandwidthDsbCycles = 0.0;   ///< DSB-thrash decoder stalls
    double feBandwidthMiteCycles = 0.0;  ///< MITE steady-state deficit
    double badSpecCycles = 0.0;
    double beCoreCycles = 0.0;        ///< functional-unit contention
    double beMemL2Cycles = 0.0;
    double beMemL3Cycles = 0.0;
    double beMemDramLatCycles = 0.0;
    double beMemDramBwCycles = 0.0;   ///< DRAM bandwidth-congested stalls
    /// Cycles spent in kernels whose DRAM demand exceeded 70% of the
    /// controller's service capacity (Intel's congestion criterion).
    double dramCongestedCycles = 0.0;
    double storeCycles = 0.0;

    // Functional-unit usage distribution: fraction of cycles with at
    // least k of the 8 execution ports busy, k in [0, 8].
    double portsBusyAtLeast[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};

    /** Merge another region's counters (weighted by its cycles). */
    void accumulate(const CpuCounters& other);

    double feCycles() const
    {
        return feLatencyCycles + feBandwidthDsbCycles +
               feBandwidthMiteCycles;
    }
    double beMemCycles() const
    {
        return beMemL2Cycles + beMemL3Cycles + beMemDramLatCycles +
               beMemDramBwCycles;
    }
    double beCycles() const { return beCoreCycles + beMemCycles(); }

    double ipc(int width) const;
    double instructionsRetired() const
    {
        // recstack accounts in fused-uop granularity; retired
        // instruction counts are reported in the same unit.
        return static_cast<double>(uopsRetired);
    }
    double imspki() const;    ///< i-cache misses per kilo-uop
    double mispredictsPerKuop() const;
};

}  // namespace recstack

#endif  // RECSTACK_UARCH_COUNTERS_H_
