#!/usr/bin/env bash
# Documentation hygiene checks, wired up as the `check_docs` ctest
# (label `unit`). Three grep-based invariants keep the docs from
# silently drifting away from the tree:
#
#   1. every docs/*.md file is referenced from README.md — the README
#      doc index is the entry point, an unlinked doc is a dead doc;
#   2. every relative markdown link in README.md and docs/*.md
#      resolves to an existing file (http(s) links and pure #anchors
#      are skipped);
#   3. every RECSTACK_* name mentioned in README/docs (env vars such
#      as RECSTACK_NUM_THREADS, macros such as RECSTACK_SPAN, CMake
#      options such as RECSTACK_SANITIZE) still exists somewhere in
#      the source tree, so the docs cannot describe knobs that were
#      renamed or removed;
#   4. every CLI subcommand the binary's usage() advertises is
#      mentioned in README.md, so a new `recstack <cmd>` cannot ship
#      undocumented;
#   5. every ctest label the docs tell the reader to run (`ctest -L
#      foo`, `-L 'a|b'`) is actually assigned to some test in
#      tests/CMakeLists.txt or tools/CMakeLists.txt, so a doc cannot
#      recommend a label that selects nothing.
#
# Usage: tools/check_docs.sh   (run from anywhere; cds to repo root)
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
err() {
    echo "check_docs: FAIL: $*" >&2
    fail=1
}

# -- 1. README links every doc -------------------------------------
for doc in docs/*.md; do
    if ! grep -q "$doc" README.md; then
        err "README.md does not reference $doc"
    fi
done

# -- 2. relative markdown links resolve ----------------------------
for md in README.md docs/*.md; do
    dir=$(dirname "$md")
    # Pull out ](target) link targets; tolerate files with no links.
    targets=$(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//' || true)
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
            *' '*) continue ;;  # "](x, y)" inside a code sample, not a link
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            err "$md: broken relative link ($target)"
        fi
    done <<<"$targets"
done

# -- 3. RECSTACK_* names in docs exist in the tree -----------------
names=$(grep -rhoE 'RECSTACK_[A-Z0-9_]+' README.md docs/*.md | sort -u)
while IFS= read -r name; do
    [ -z "$name" ] && continue
    if ! grep -rqE "\b${name}\b" --include='*.h' --include='*.cc' \
        --include='*.cpp' --include='*.txt' --include='*.cmake' \
        --include='*.sh' src tools tests bench examples \
        CMakeLists.txt 2>/dev/null; then
        err "docs mention ${name}, which no longer appears in the source tree"
    fi
done <<<"$names"

# -- 4. every usage() subcommand is documented in README -----------
# The usage text lists one "  recstack <cmd> ..." line per
# subcommand; pull the command words out of the CLI source.
cmds=$(grep -oE '"  recstack [a-z]+' tools/recstack_cli.cpp |
    awk '{print $3}' | sort -u)
while IFS= read -r cmd; do
    [ -z "$cmd" ] && continue
    if ! grep -qE "recstack ${cmd}\b" README.md; then
        err "CLI subcommand 'recstack ${cmd}' is not documented in README.md"
    fi
done <<<"$cmds"

# -- 5. ctest labels named in docs select real tests ---------------
# Known labels: LABELS arguments of recstack_test() /
# set_tests_properties() in the two test-defining CMakeLists, plus
# `unit` (the recstack_test default) and `integration`.
known_labels=$(
    {
        grep -hoE 'LABELS [a-z" ;|]+' tests/CMakeLists.txt \
            tools/CMakeLists.txt | sed -E 's/^LABELS //'
        echo "unit integration"
    } | tr '";| ' '\n' | sort -u
)
doc_labels=$(grep -rhoE -- "-L '?[a-z|]+'?" README.md docs/*.md |
    sed -E "s/^-L '?//; s/'$//" | tr '|' '\n' | sort -u)
while IFS= read -r label; do
    [ -z "$label" ] && continue
    if ! grep -qxF "$label" <<<"$known_labels"; then
        err "docs tell the reader to run ctest label '${label}', which no test carries"
    fi
done <<<"$doc_labels"

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_docs: OK"
