#!/usr/bin/env bash
# Sanitizer passes over the suites that can hide memory/concurrency
# bugs from the default build:
#
#   tsan  — RECSTACK_SANITIZE=thread build, `ctest -L 'sanitize|store|disk|serving|obs|sched|simd|fleet|pim'`:
#           the concurrency suites (thread pool, serving engine,
#           parallel kernels, plan-vs-interpreted equivalence, the
#           sharded embedding store's lock/prefetch machinery).
#   asan  — RECSTACK_SANITIZE=address build, `ctest -L 'plan|store|disk|serving|obs|sched|simd|fleet|pim'`:
#           the compiled-net planner/arena suites plus the embedding
#           store. Arena aliasing assigns overlapping
#           [offset, offset+bytes) ranges to blobs with disjoint
#           lifetimes, and the store hands out cache-payload pointers
#           under shard locks; an off-by-one in liveness, first-fit
#           placement, or row-payload sizing is exactly the kind of
#           bug that stays numerically silent until the sanitizer
#           sees the bad access.
#
# Both passes include the `obs` label: the metrics registry and span
# trace buffer are written from every worker thread on lock-free
# paths, so the observability layer must stay clean under TSan (the
# striped counters, the per-slot ready flags) and ASan (fixed-size
# record copies).
#
# The `simd` label covers the kernel-tier suites (ISA dispatch and
# the vector-vs-scalar differential harness): the AVX2 kernels read
# 32-byte lanes up to the last full block and must never touch bytes
# past a tensor's tail (ASan), and a kernel tier is resolved once per
# op and captured into pool-worker lambdas, which TSan verifies races
# neither with IsaScope nesting nor with the env-cache atomics.
#
# The `sched` label covers the heterogeneous scheduling suites
# (threshold router, GPU lane, hill-climb tuner): the lane is driven
# from every worker thread under the batch-queue lock and the tuner
# reads the shared metrics registry, so those paths run under both
# sanitizers too.
#
# The `fleet` label covers the cluster simulator suites: the
# differential replay drives the real multi-threaded ServingNode on
# captured traces (worker pool + batch queue under load), and the
# per-node histogram merge folds atomics written by those workers, so
# both sanitizers rerun them.
#
# The `pim` label covers the near-memory offload suites: the PIM
# serving lane is the same batch-queue-driven accumulation lane as
# the GPU one, submitted to from every worker thread and drained at
# shutdown, so its routing and conservation tests run under both
# sanitizers alongside the analytical-model invariants.
#
# The `disk` label covers the persistent far-tier suites: DiskTier
# hands out payloads copied from a shared page buffer pool under its
# own mutex while the promotion loop runs on the prefetch thread
# (TSan: shard lock -> tier lock ordering, the promoPending flag),
# and page frames, mmap windows and per-shard scratch rows are all
# fixed-size regions an off-by-one row/page computation would
# overrun (ASan).
#
# Usage: tools/run_sanitize_checks.sh [tsan|asan|all]   (default: all)
#
# Build trees land in build-tsan/ and build-asan/ next to build/ and
# are reused incrementally on later runs.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
    local sanitizer="$1" tree="$2" label="$3"
    echo "== ${sanitizer} pass: build ${tree}, ctest -L ${label} =="
    cmake -B "${tree}" -S . -DRECSTACK_SANITIZE="${sanitizer}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "${tree}" -j "${jobs}"
    ctest --test-dir "${tree}" -L "${label}" -j "${jobs}" --output-on-failure
}

case "${mode}" in
    tsan) run_pass thread build-tsan 'sanitize|store|disk|serving|obs|sched|simd|fleet|pim' ;;
    asan) run_pass address build-asan 'plan|store|disk|serving|obs|sched|simd|fleet|pim' ;;
    all)
        run_pass address build-asan 'plan|store|disk|serving|obs|sched|simd|fleet|pim'
        run_pass thread build-tsan 'sanitize|store|disk|serving|obs|sched|simd|fleet|pim'
        ;;
    *)
        echo "usage: $0 [tsan|asan|all]" >&2
        exit 2
        ;;
esac

echo "== sanitize checks passed (${mode}) =="
