#!/usr/bin/env bash
# Sanitizer passes over the suites that can hide memory/concurrency
# bugs from the default build:
#
#   tsan  — RECSTACK_SANITIZE=thread build, `ctest -L sanitize`:
#           the concurrency suites (thread pool, serving engine,
#           parallel kernels, plan-vs-interpreted equivalence).
#   asan  — RECSTACK_SANITIZE=address build, `ctest -L plan`:
#           the compiled-net planner/arena suites. Arena aliasing
#           assigns overlapping [offset, offset+bytes) ranges to
#           blobs with disjoint lifetimes; an off-by-one in liveness
#           or first-fit placement is exactly the kind of bug that
#           stays numerically silent until ASan sees the overflow.
#
# Usage: tools/run_sanitize_checks.sh [tsan|asan|all]   (default: all)
#
# Build trees land in build-tsan/ and build-asan/ next to build/ and
# are reused incrementally on later runs.
set -euo pipefail

cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_pass() {
    local sanitizer="$1" tree="$2" label="$3"
    echo "== ${sanitizer} pass: build ${tree}, ctest -L ${label} =="
    cmake -B "${tree}" -S . -DRECSTACK_SANITIZE="${sanitizer}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
    cmake --build "${tree}" -j "${jobs}"
    ctest --test-dir "${tree}" -L "${label}" -j "${jobs}" --output-on-failure
}

case "${mode}" in
    tsan) run_pass thread build-tsan sanitize ;;
    asan) run_pass address build-asan plan ;;
    all)
        run_pass address build-asan plan
        run_pass thread build-tsan sanitize
        ;;
    *)
        echo "usage: $0 [tsan|asan|all]" >&2
        exit 2
        ;;
esac

echo "== sanitize checks passed (${mode}) =="
