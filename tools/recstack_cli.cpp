/**
 * @file
 * recstack — command-line front end to the characterization stack.
 *
 *   recstack models
 *   recstack platforms
 *   recstack run <MODEL> <BATCH> [platform-substring]
 *   recstack sweep <MODEL|all> [--csv]
 *   recstack topdown <MODEL> <BATCH> <bdw|clx>
 *   recstack schedule <MODEL> <SLA_MS>
 *   recstack plan <MODEL> <BATCH> [--json]
 *   recstack store <MODEL> <BATCH> [--json]
 *   recstack obs <MODEL> <BATCH> [--trace out.json] [--metrics]
 *   recstack hetero <MODEL> [--json]
 *   recstack pim <MODEL> <BATCH> [--json]
 *   recstack fleet <MODEL> [--nodes N] [--json]
 *   recstack record <MODEL> <BATCH> <FILE>
 *   recstack replay <FILE> [platform-substring]
 *   recstack custom <CONFIG> <BATCH>
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/sweep.h"
#include "core/trace_runner.h"
#include "graph/executor.h"
#include "models/custom.h"
#include "models/store_binding.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "pim/pim_model.h"
#include "obs/trace_export.h"
#include "report/chart.h"
#include "report/csv.h"
#include "report/table.h"
#include "fleet/autoscaler.h"
#include "fleet/fleet_sim.h"
#include "sched/hill_climb.h"
#include "sched/query_scheduler.h"
#include "serve/serving_engine.h"

using namespace recstack;

namespace {

int
usage()
{
    std::printf(
        "recstack — cross-stack recommendation-inference characterizer\n"
        "\n"
        "  recstack models                          Table I summary\n"
        "  recstack platforms                       Table II summary\n"
        "  recstack run <MODEL> <BATCH> [PLATFORM]  one characterization\n"
        "  recstack sweep <MODEL|all> [--csv]       model x platform x "
        "batch grid\n"
        "  recstack topdown <MODEL> <BATCH> <bdw|clx>  TopDown drill-"
        "down\n"
        "  recstack schedule <MODEL> <SLA_MS>       SLA-aware routing\n"
        "  recstack plan <MODEL> <BATCH> [--json]   compiled schedule + "
        "arena memory plan\n"
        "  recstack store <MODEL> <BATCH> [--json]  sharded embedding-"
        "store hit/miss/tier report\n"
        "  recstack obs <MODEL> <BATCH> [--trace FILE] [--metrics]\n"
        "                                           serve real batches, "
        "export a Chrome trace\n"
        "                                           + metrics snapshot\n"
        "  recstack hetero <MODEL> [--json]         tune the CPU/GPU "
        "routing threshold online\n"
        "  recstack pim <MODEL> <BATCH> [--json]    near-memory offload "
        "report + rank/tasklet sweep\n"
        "  recstack fleet <MODEL> [--nodes N] [--json]\n"
        "                                           simulate an M-node "
        "fleet: routing policies\n"
        "                                           + obs-driven "
        "autoscaling\n"
        "  recstack record <MODEL> <BATCH> <FILE>   capture a kernel "
        "trace\n"
        "  recstack replay <FILE> [PLATFORM]        re-simulate a "
        "trace\n"
        "  recstack custom <CONFIG> <BATCH>         characterize a "
        "user-defined model\n");
    return 2;
}

int
cmdModels()
{
    Characterizer c;
    TextTable table({"model", "domain", "tables", "lookups/table",
                     "ops", "insight"});
    for (ModelId id : allModels()) {
        const Model& m = c.model(id);
        table.addRow({m.name, modelDomain(id),
                      std::to_string(m.features.numTables),
                      TextTable::fmt(m.features.lookupsPerTable, 0),
                      std::to_string(m.net.opCount()),
                      modelInsight(id)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdPlatforms()
{
    TextTable table({"platform", "kind", "key parameters"});
    for (const Platform& p : allPlatforms()) {
        if (p.kind == PlatformKind::kCpu) {
            table.addRow(
                {p.name(), "CPU",
                 TextTable::fmt(p.cpu.freqGHz, 1) + " GHz, " +
                     std::to_string(p.cpu.simdBits) + "b SIMD, L3 " +
                     std::to_string(p.cpu.l3.sizeBytes >> 20) + " MB (" +
                     (p.cpu.l3Policy == InclusionPolicy::kInclusive
                          ? "inclusive"
                          : "exclusive") +
                     "), " + TextTable::fmt(p.cpu.dramGBs, 0) +
                     " GB/s DRAM"});
        } else {
            table.addRow(
                {p.name(), "GPU",
                 std::to_string(p.gpu.smCount) + " SMs, " +
                     TextTable::fmt(p.gpu.effTflops, 2) +
                     " TF sustained, " +
                     TextTable::fmt(p.gpu.memGBs, 0) + " GB/s"});
        }
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdRun(const std::string& model, int64_t batch,
       const std::string& platform_filter)
{
    const ModelId id = modelFromName(model);
    Characterizer c;
    TextTable table({"platform", "latency", "dominant op", "detail"});
    for (const Platform& p : allPlatforms()) {
        if (!platform_filter.empty() &&
            p.name().find(platform_filter) == std::string::npos) {
            continue;
        }
        const RunResult r = c.run(id, p, batch);
        std::string detail;
        if (r.kind == PlatformKind::kCpu) {
            detail = "retire " +
                     TextTable::fmtPercent(r.topdown.l1.retiring) +
                     ", backend " +
                     TextTable::fmtPercent(r.topdown.l1.backendBound) +
                     ", IPC " + TextTable::fmt(r.topdown.ipc, 2);
        } else {
            detail = "data-comm " +
                     TextTable::fmtPercent(r.gpu.dataCommFraction());
        }
        table.addRow({p.name(), TextTable::fmtSeconds(r.seconds),
                      r.breakdown.dominantType(), detail});
    }
    if (table.rows() == 0) {
        std::printf("no platform matches '%s'\n",
                    platform_filter.c_str());
        return 1;
    }
    std::printf("%s batch %lld:\n%s", modelName(id),
                static_cast<long long>(batch), table.render().c_str());
    return 0;
}

int
cmdSweep(const std::string& which, bool csv)
{
    SweepCache sweep(allPlatforms());
    std::vector<ModelId> models;
    if (which == "all") {
        models = allModels();
    } else {
        models.push_back(modelFromName(which));
    }

    if (csv) {
        CsvWriter writer(&std::cout);
        writer.header({"model", "platform", "batch", "seconds",
                       "speedup_vs_bdw", "dominant_op"});
        for (ModelId id : models) {
            for (size_t p = 0; p < sweep.platforms().size(); ++p) {
                for (int64_t b : paperBatchSizes()) {
                    const RunResult& r = sweep.get(id, p, b);
                    writer.row({modelName(id),
                                sweep.platforms()[p].name(),
                                std::to_string(b),
                                TextTable::fmt(r.seconds, 9),
                                TextTable::fmt(
                                    sweep.speedupOverBaseline(id, p, b),
                                    3),
                                r.breakdown.dominantType()});
                }
            }
        }
        return 0;
    }

    for (ModelId id : models) {
        std::printf("\n--- %s ---\n", modelName(id));
        TextTable table({"batch", "BDW", "CLX", "1080Ti", "T4"});
        for (int64_t b : paperBatchSizes()) {
            table.addRow(
                {std::to_string(b),
                 TextTable::fmtSeconds(sweep.get(id, 0, b).seconds),
                 TextTable::fmtSpeedup(
                     sweep.speedupOverBaseline(id, 1, b)),
                 TextTable::fmtSpeedup(
                     sweep.speedupOverBaseline(id, 2, b)),
                 TextTable::fmtSpeedup(
                     sweep.speedupOverBaseline(id, 3, b))});
        }
        std::printf("%s", table.render().c_str());
    }
    return 0;
}

int
cmdTopdown(const std::string& model, int64_t batch,
           const std::string& uarch)
{
    const Platform platform =
        uarch == "clx" ? makeCpuPlatform(cascadeLakeConfig())
                       : makeCpuPlatform(broadwellConfig());
    Characterizer c;
    const RunResult r = c.run(modelFromName(model), platform, batch);
    const TopDownL1& l1 = r.topdown.l1;
    std::printf("%s batch %lld on %s (%s):\n\n", model.c_str(),
                static_cast<long long>(batch), platform.name().c_str(),
                TextTable::fmtSeconds(r.seconds).c_str());
    std::printf("%s",
                stackedBar("TopDown L1",
                           {{"retire", l1.retiring},
                            {"badspec", l1.badSpeculation},
                            {"frontend", l1.frontendBound},
                            {"backend", l1.backendBound}})
                    .c_str());
    std::printf(
        "\nL2: feLat %.1f%%  feDSB %.1f%%  feMITE %.1f%%  beCore %.1f%%"
        "  beMem %.1f%% (L2 %.1f%% / L3 %.1f%% / DRAM %.1f%%)\n"
        "IPC %.2f   AVX %.1f%%   i-MPKI %.2f   mispredicts/kuop %.2f\n",
        100 * r.topdown.l2.feLatency, 100 * r.topdown.l2.feBandwidthDsb,
        100 * r.topdown.l2.feBandwidthMite, 100 * r.topdown.l2.beCore,
        100 * r.topdown.l2.beMemory, 100 * r.topdown.l2.memL2,
        100 * r.topdown.l2.memL3,
        100 * (r.topdown.l2.memDramLatency +
               r.topdown.l2.memDramBandwidth),
        r.topdown.ipc, 100 * r.topdown.avxFraction, r.topdown.imspki,
        r.topdown.mispredictsPerKuop);

    std::printf("\noperator breakdown:\n");
    std::vector<ChartItem> items;
    for (const auto& [type, frac] : r.breakdown.fractions()) {
        if (frac >= 0.02) {
            items.push_back({type, frac * 100.0});
        }
    }
    std::printf("%s", barChart(items, 40, "%").c_str());
    return 0;
}

int
cmdSchedule(const std::string& model, double sla_ms)
{
    SweepCache sweep(allPlatforms());
    QueryScheduler sched(&sweep);
    const ModelId id = modelFromName(model);
    const ThroughputPoint tp =
        sched.bestThroughputUnderSla(id, sla_ms * 1e-3);
    if (!tp.feasible) {
        std::printf("%s cannot meet a %.2f ms SLA on any platform at "
                    "any batch size\n",
                    modelName(id), sla_ms);
        return 1;
    }
    std::printf("%s under a %.2f ms SLA:\n  platform   %s\n  batch     "
                " %lld\n  latency    %s\n  throughput %.0f samples/s\n",
                modelName(id), sla_ms,
                sweep.platforms()[tp.platformIdx].name().c_str(),
                static_cast<long long>(tp.batch),
                TextTable::fmtSeconds(tp.latencySeconds).c_str(),
                tp.samplesPerSecond);
    return 0;
}

int
cmdRecord(const std::string& model, int64_t batch,
          const std::string& path)
{
    Characterizer characterizer;
    const RecordedTrace trace =
        recordTrace(characterizer, modelFromName(model), batch);
    std::string error;
    if (!saveTrace(path, trace.meta, trace.kernels, &error)) {
        std::printf("error: %s\n", error.c_str());
        return 1;
    }
    std::printf("recorded %zu kernels of %s batch %lld to %s\n",
                trace.kernels.size(), trace.meta.model.c_str(),
                static_cast<long long>(batch), path.c_str());
    return 0;
}

int
cmdReplay(const std::string& path, const std::string& platform_filter)
{
    RecordedTrace trace;
    std::string error;
    if (!loadTrace(path, &trace.meta, &trace.kernels, &error)) {
        std::printf("error: %s\n", error.c_str());
        return 1;
    }
    std::printf("trace: %s batch %lld, %zu kernels\n",
                trace.meta.model.c_str(),
                static_cast<long long>(trace.meta.batch),
                trace.kernels.size());
    TextTable table({"platform", "latency", "dominant op"});
    for (const Platform& p : allPlatforms()) {
        if (!platform_filter.empty() &&
            p.name().find(platform_filter) == std::string::npos) {
            continue;
        }
        const RunResult r = replayTrace(trace, p);
        table.addRow({p.name(), TextTable::fmtSeconds(r.seconds),
                      r.breakdown.dominantType()});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdCustom(const std::string& path, int64_t batch)
{
    CustomModelConfig config;
    std::string error;
    if (!loadCustomModelConfig(path, &config, &error)) {
        std::printf("error: %s\n", error.c_str());
        return 1;
    }
    Model model = buildCustomModel(config);
    std::printf("%s: %d tables, %zu ops, %.1f M parameters\n\n",
                model.name.c_str(), model.features.numTables,
                model.net.opCount(),
                static_cast<double>(model.paramBytes()) / 4e6);

    Workspace ws;
    ws.setShapeOnly(true);
    model.declareParams(ws);
    BatchGenerator gen(model.workload);
    gen.declare(ws, batch);
    const NetExecResult exec =
        Executor::run(model.net, ws, ExecMode::kProfileOnly);
    std::vector<KernelProfile> profiles;
    profiles.push_back(gen.dataLoadProfile(batch));
    for (const auto& rec : exec.records) {
        profiles.push_back(rec.profile);
    }

    TextTable table({"platform", "latency", "dominant op", "detail"});
    for (const Platform& p : allPlatforms()) {
        const RunResult r = simulateProfiles(
            profiles, p, ModelId::kCustom, batch, gen.inputBytes(batch),
            model.workload.categorical.size() * 2 +
                model.workload.continuous.size());
        std::string detail;
        if (r.kind == PlatformKind::kCpu) {
            detail = "retire " +
                     TextTable::fmtPercent(r.topdown.l1.retiring) +
                     ", backend " +
                     TextTable::fmtPercent(r.topdown.l1.backendBound);
        } else {
            detail = "data-comm " +
                     TextTable::fmtPercent(r.gpu.dataCommFraction());
        }
        table.addRow({p.name(), TextTable::fmtSeconds(r.seconds),
                      r.breakdown.dominantType(), detail});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

/** Dump the compiled schedule, fusion decisions and arena layout. */
int
cmdPlan(const std::string& model, int64_t batch, bool json)
{
    const ModelId id = modelFromName(model);
    Characterizer c;
    const CompiledNet& net = c.compiled(id);
    const NetPlan& plan = c.memoryPlan(id, batch);
    const auto& blobs = net.blobs();
    const double naive =
        static_cast<double>(std::max<size_t>(1, plan.naiveActivationBytes));
    const double ratio = static_cast<double>(plan.arenaBytes) / naive;

    if (json) {
        std::printf("{\n  \"model\": \"%s\",\n  \"batch\": %lld,\n",
                    c.model(id).name.c_str(),
                    static_cast<long long>(batch));
        std::printf("  \"originalOps\": %zu,\n  \"compiledOps\": %zu,\n",
                    net.originalOpCount(), net.opCount());
        std::printf("  \"planningEnabled\": %s,\n",
                    net.planningEnabled() ? "true" : "false");
        std::printf("  \"kernelIsa\": \"%s\",\n",
                    kernelIsaName(plan.kernelIsa));
        std::printf("  \"naiveActivationBytes\": %zu,\n",
                    plan.naiveActivationBytes);
        std::printf("  \"fusedActivationBytes\": %zu,\n",
                    plan.fusedActivationBytes);
        std::printf("  \"arenaBytes\": %zu,\n", plan.arenaBytes);
        std::printf("  \"arenaToNaive\": %.4f,\n", ratio);
        std::printf("  \"fusions\": [\n");
        const auto& fusions = net.fusions();
        for (size_t i = 0; i < fusions.size(); ++i) {
            std::printf("    {\"kind\": \"%s\", \"op\": \"%s\", "
                        "\"absorbed\": %zu}%s\n",
                        fusions[i].kind.c_str(),
                        fusions[i].fusedOp.c_str(),
                        fusions[i].absorbedOps.size(),
                        i + 1 < fusions.size() ? "," : "");
        }
        std::printf("  ],\n  \"blobs\": [\n");
        for (size_t i = 0; i < blobs.size(); ++i) {
            const char* role =
                blobs[i].role == BlobRole::kExternalInput    ? "input"
                : blobs[i].role == BlobRole::kExternalOutput ? "output"
                                                             : "activation";
            std::printf("    {\"name\": \"%s\", \"role\": \"%s\", "
                        "\"def\": %d, \"lastUse\": %d, \"bytes\": %zu",
                        blobs[i].name.c_str(), role, blobs[i].def,
                        blobs[i].lastUse, plan.bytes[i]);
            if (plan.offsets[i] != kNoArenaOffset) {
                std::printf(", \"arenaOffset\": %zu", plan.offsets[i]);
            }
            std::printf("}%s\n", i + 1 < blobs.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::printf("%s @ batch %lld: %zu ops compiled to %zu (%zu fusions)"
                ", kernel tier %s%s\n\n",
                c.model(id).name.c_str(), static_cast<long long>(batch),
                net.originalOpCount(), net.opCount(),
                net.fusions().size(), kernelIsaName(plan.kernelIsa),
                net.planningEnabled() ? ""
                                      : "  [planning disabled]");

    TextTable fusions({"pass", "fused op", "absorbed"});
    for (const FusionDecision& f : net.fusions()) {
        fusions.addRow({f.kind, f.fusedOp,
                        std::to_string(f.absorbedOps.size()) + " ops"});
    }
    std::printf("%s\n", fusions.render().c_str());

    TextTable sched({"#", "type", "op", "outputs"});
    const auto& ops = net.ops();
    for (size_t i = 0; i < ops.size(); ++i) {
        std::string outs;
        for (const auto& o : ops[i]->outputs()) {
            outs += (outs.empty() ? "" : ", ") + o;
        }
        sched.addRow({std::to_string(i), ops[i]->type(), ops[i]->name(),
                      outs});
    }
    std::printf("%s\n", sched.render().c_str());

    TextTable arena({"blob", "role", "live", "bytes", "arena offset"});
    for (size_t i = 0; i < blobs.size(); ++i) {
        const char* role =
            blobs[i].role == BlobRole::kExternalInput    ? "input"
            : blobs[i].role == BlobRole::kExternalOutput ? "output"
                                                         : "activation";
        arena.addRow(
            {blobs[i].name, role,
             "[" + std::to_string(blobs[i].def) + ", " +
                 std::to_string(blobs[i].lastUse) + "]",
             std::to_string(plan.bytes[i]),
             plan.offsets[i] == kNoArenaOffset
                 ? "-"
                 : std::to_string(plan.offsets[i])});
    }
    std::printf("%s\n", arena.render().c_str());

    std::printf("activation bytes: naive %zu, fused %zu, planned arena "
                "%zu (%.1f%% of naive)\n",
                plan.naiveActivationBytes, plan.fusedActivationBytes,
                plan.arenaBytes, 100.0 * ratio);
    return 0;
}

/**
 * Run a few real batches through the sharded embedding store and
 * report per-shard cache hit/miss/tier traffic, the modeled lookup
 * cost tail, and the serving memory saving versus per-worker copies.
 */
int
cmdStore(const std::string& model_name, int64_t batch, bool json)
{
    if (EmbeddingStore::disabledByEnv()) {
        std::printf("RECSTACK_DISABLE_STORE is set: store-backed "
                    "execution is disabled, nothing to report.\n");
        return 0;
    }
    const ModelId id = modelFromName(model_name);
    // Full-size tables (RM2: 32 x 250k x 64 floats) are ~2 GB; a
    // scaled-down store keeps the command interactive while the cache
    // is still a small fraction of the tables.
    ModelOptions opts;
    opts.tableScale = 0.05;
    const Model model = buildModel(id, opts);

    StoreConfig cfg;
    cfg.numShards = 8;
    cfg.cacheBytesPerShard = 256u << 10;
    cfg.nearTierFraction = 0.5;
    // Real disk far tier: cold rows in a page file behind the
    // radix-spline index. RECSTACK_DISABLE_DISK_TIER=1 falls back to
    // the simulated tier, RECSTACK_STORE_DIR picks the directory.
    cfg.farTier = FarTierKind::kDisk;
    const StoreBackedModel store_model(model, cfg);
    EmbeddingStore& store = store_model.store();

    Workspace ws;
    store_model.bind(ws);
    ExecOptions exec_opts;
    exec_opts.mode = ExecMode::kNumericOnly;
    // Serial execution: numerics are width-invariant, but shard
    // hit/miss counters depend on the interleaving of concurrent
    // chunks over the shared caches. A report should be reproducible.
    exec_opts.numThreads = 1;
    const int kBatches = 8;
    for (int i = 0; i < kBatches; ++i) {
        // Fresh generator seed per batch: a repeated seed would replay
        // identical indices and make every batch after the first a
        // pure cache hit.
        BatchGenerator gen(model.workload,
                           1234 + static_cast<uint64_t>(i));
        gen.materialize(ws, batch);
        Executor::run(model.net, ws, exec_opts);
    }

    const StoreStats stats = store.stats();
    const uint64_t one_copy = store_model.embeddingBytesOneCopy();
    const uint64_t resident = store_model.residentBytes();
    const int kWorkers = 4;
    const uint64_t per_worker =
        one_copy * static_cast<uint64_t>(kWorkers);
    const uint64_t total_bytes =
        stats.total.bytesFromCache + stats.total.bytesFromNear +
        stats.total.bytesFromFar + stats.total.bytesFromDisk;
    const double dram_frac =
        total_bytes > 0
            ? static_cast<double>(stats.total.bytesFromNear +
                                  stats.total.bytesFromFar +
                                  stats.total.bytesFromDisk) /
                  static_cast<double>(total_bytes)
            : 0.0;
    const SplineIndexStats& spline = stats.diskTier.spline;

    if (json) {
        std::printf("{\n  \"model\": \"%s\",\n  \"batch\": %lld,\n",
                    model.name.c_str(), static_cast<long long>(batch));
        std::printf("  \"batchesRun\": %d,\n  \"numShards\": %d,\n",
                    kBatches, cfg.numShards);
        std::printf("  \"cachePolicy\": \"%s\",\n",
                    cachePolicyName(cfg.policy));
        std::printf("  \"lookups\": %llu,\n  \"hits\": %llu,\n",
                    static_cast<unsigned long long>(stats.total.lookups),
                    static_cast<unsigned long long>(stats.total.hits));
        std::printf("  \"hitRate\": %.4f,\n", stats.hitRate());
        std::printf(
            "  \"nearFetches\": %llu,\n  \"farFetches\": %llu,\n",
            static_cast<unsigned long long>(stats.total.nearFetches),
            static_cast<unsigned long long>(stats.total.farFetches));
        std::printf("  \"evictions\": %llu,\n",
                    static_cast<unsigned long long>(
                        stats.total.evictions));
        std::printf("  \"cacheFilteredTrafficFraction\": %.4f,\n",
                    dram_frac);
        std::printf("  \"farTier\": \"%s\",\n",
                    stats.diskTierActive ? "disk" : "simulated");
        std::printf(
            "  \"tiers\": {\n"
            "    \"cache\": {\"rows\": %llu, \"bytes\": %llu},\n"
            "    \"near\": {\"rows\": %llu, \"bytes\": %llu},\n"
            "    \"disk\": {\"rows\": %llu, \"bytes\": %llu, "
            "\"measuredP99Seconds\": %.3e, "
            "\"measuredSeconds\": %.6e}\n  },\n",
            static_cast<unsigned long long>(stats.total.hits),
            static_cast<unsigned long long>(stats.total.bytesFromCache),
            static_cast<unsigned long long>(stats.total.nearFetches),
            static_cast<unsigned long long>(stats.total.bytesFromNear),
            static_cast<unsigned long long>(stats.total.diskFetches),
            static_cast<unsigned long long>(stats.total.bytesFromDisk),
            stats.diskCostPercentile(0.99), stats.total.diskSeconds);
        std::printf(
            "  \"promotedRows\": %llu,\n  \"demotedRows\": %llu,\n",
            static_cast<unsigned long long>(stats.total.promotedRows),
            static_cast<unsigned long long>(stats.total.demotedRows));
        std::printf(
            "  \"spline\": {\"keys\": %zu, \"segments\": %zu, "
            "\"maxErrorBound\": %zu, \"maxErrorObserved\": %zu, "
            "\"indexBytes\": %zu},\n",
            spline.numKeys, spline.numSegments, spline.maxErrorBound,
            spline.maxErrorObserved, spline.indexBytes);
        std::printf("  \"diskFileBytes\": %llu,\n",
                    static_cast<unsigned long long>(
                        store.diskFileBytes()));
        std::printf("  \"simSeconds\": %.6e,\n", stats.total.simSeconds);
        std::printf("  \"lookupCostP50\": %.3e,\n",
                    stats.costPercentile(0.50));
        std::printf("  \"lookupCostP99\": %.3e,\n",
                    stats.costPercentile(0.99));
        std::printf("  \"tableBytesOneCopy\": %llu,\n",
                    static_cast<unsigned long long>(one_copy));
        std::printf("  \"storeResidentBytes\": %llu,\n",
                    static_cast<unsigned long long>(resident));
        std::printf("  \"perWorkerBytesAt%dWorkers\": %llu,\n", kWorkers,
                    static_cast<unsigned long long>(per_worker));
        std::printf("  \"perShard\": [\n");
        for (size_t s = 0; s < stats.perShard.size(); ++s) {
            const ShardCounters& c = stats.perShard[s];
            std::printf(
                "    {\"shard\": %zu, \"lookups\": %llu, "
                "\"hitRate\": %.4f, \"near\": %llu, \"far\": %llu, "
                "\"evictions\": %llu, \"cacheBytes\": %llu}%s\n",
                s, static_cast<unsigned long long>(c.lookups),
                c.hitRate(),
                static_cast<unsigned long long>(c.nearFetches),
                static_cast<unsigned long long>(c.farFetches),
                static_cast<unsigned long long>(c.evictions),
                static_cast<unsigned long long>(c.cacheBytesUsed),
                s + 1 < stats.perShard.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::printf("%s @ batch %lld: %d batches through a %d-shard "
                "embedding store (%s, %zu KB cache/shard, near-tier "
                "fraction %.2f)\n\n",
                model.name.c_str(), static_cast<long long>(batch),
                kBatches, cfg.numShards, cachePolicyName(cfg.policy),
                cfg.cacheBytesPerShard >> 10, cfg.nearTierFraction);

    TextTable shards({"shard", "lookups", "hit rate", "near", "far",
                      "disk", "evictions", "cache KB"});
    for (size_t s = 0; s < stats.perShard.size(); ++s) {
        const ShardCounters& c = stats.perShard[s];
        shards.addRow({std::to_string(s), std::to_string(c.lookups),
                       TextTable::fmtPercent(c.hitRate()),
                       std::to_string(c.nearFetches),
                       std::to_string(c.farFetches),
                       std::to_string(c.diskFetches),
                       std::to_string(c.evictions),
                       std::to_string(c.cacheBytesUsed >> 10)});
    }
    shards.addRow({"total", std::to_string(stats.total.lookups),
                   TextTable::fmtPercent(stats.hitRate()),
                   std::to_string(stats.total.nearFetches),
                   std::to_string(stats.total.farFetches),
                   std::to_string(stats.total.diskFetches),
                   std::to_string(stats.total.evictions),
                   std::to_string(stats.total.cacheBytesUsed >> 10)});
    std::printf("%s\n", shards.render().c_str());

    // Per-tier breakdown: cache and near costs are modeled, the disk
    // column is measured wall clock off the page file.
    TextTable tiers({"tier", "rows", "bytes", "p99 cost"});
    tiers.addRow({"cache", std::to_string(stats.total.hits),
                  std::to_string(stats.total.bytesFromCache),
                  TextTable::fmtSeconds(cfg.cacheHitLatencySeconds)});
    tiers.addRow({"near", std::to_string(stats.total.nearFetches),
                  std::to_string(stats.total.bytesFromNear),
                  TextTable::fmtSeconds(stats.costPercentile(0.99))});
    tiers.addRow(
        {stats.diskTierActive ? "disk" : "far (simulated)",
         std::to_string(stats.diskTierActive ? stats.total.diskFetches
                                             : stats.total.farFetches),
         std::to_string(stats.diskTierActive
                            ? stats.total.bytesFromDisk
                            : stats.total.bytesFromFar),
         stats.diskTierActive
             ? TextTable::fmtSeconds(stats.diskCostPercentile(0.99)) +
                   " (measured)"
             : TextTable::fmtSeconds(stats.costPercentile(0.99))});
    std::printf("%s\n", tiers.render().c_str());

    if (stats.diskTierActive) {
        std::printf("spline index: %zu keys, %zu segments, error "
                    "bound %zu (observed %zu), %zu KB; page file %llu "
                    "KB, %llu page loads, %llu pool hits; promoted "
                    "%llu rows, demoted %llu\n",
                    spline.numKeys, spline.numSegments,
                    spline.maxErrorBound, spline.maxErrorObserved,
                    spline.indexBytes >> 10,
                    static_cast<unsigned long long>(
                        store.diskFileBytes() >> 10),
                    static_cast<unsigned long long>(
                        stats.diskTier.pageLoads),
                    static_cast<unsigned long long>(
                        stats.diskTier.pageHits),
                    static_cast<unsigned long long>(
                        stats.total.promotedRows),
                    static_cast<unsigned long long>(
                        stats.total.demotedRows));
    }

    std::printf("lookup cost: p50 %s, p99 %s; modeled fetch time %s; "
                "measured disk time %s\n",
                TextTable::fmtSeconds(stats.costPercentile(0.50)).c_str(),
                TextTable::fmtSeconds(stats.costPercentile(0.99)).c_str(),
                TextTable::fmtSeconds(stats.total.simSeconds).c_str(),
                TextTable::fmtSeconds(stats.total.diskSeconds).c_str());
    std::printf("cache-filtered table traffic: %s of lookup bytes "
                "reach DRAM/far memory (rest served by hot-row "
                "caches)\n",
                TextTable::fmtPercent(dram_frac).c_str());
    std::printf("table memory: one copy %llu KB, store resident %llu "
                "KB, %d per-worker copies %llu KB (store saves "
                "%s)\n",
                static_cast<unsigned long long>(one_copy >> 10),
                static_cast<unsigned long long>(resident >> 10),
                kWorkers,
                static_cast<unsigned long long>(per_worker >> 10),
                TextTable::fmtPercent(
                    per_worker > 0
                        ? 1.0 - static_cast<double>(resident) /
                                    static_cast<double>(per_worker)
                        : 0.0)
                    .c_str());
    return 0;
}

/** Histogram percentiles vs the exact-sorted ServingStats path. */
struct MetricsSnapshotCross {
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    bool agrees = false;
};

MetricsSnapshotCross
crossCheckLatency(const ServingStats& exact)
{
    MetricsSnapshotCross out;
    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    const auto it = snap.histograms.find("serve.query_latency_seconds");
    if (it == snap.histograms.end()) {
        return out;
    }
    const obs::HistogramSnapshot& h = it->second;
    out.p50 = h.percentile(0.50);
    out.p95 = h.percentile(0.95);
    out.p99 = h.percentile(0.99);
    const double tol = h.bucketWidth();
    out.agrees = std::abs(out.p50 - exact.p50Latency) <= tol &&
                 std::abs(out.p95 - exact.p95Latency) <= tol &&
                 std::abs(out.p99 - exact.p99Latency) <= tol;
    return out;
}

/**
 * Drive a short multi-worker serving run with real numerics and the
 * shared embedding store, then report the observability layer's view
 * of it: optionally a Chrome trace (--trace FILE, open in
 * chrome://tracing or https://ui.perfetto.dev) and the full metrics
 * snapshot (--metrics). See docs/observability.md.
 */
int
cmdObs(const std::string& model_name, int64_t batch,
       const std::string& trace_path, bool metrics)
{
    const ModelId id = modelFromName(model_name);
    // Same scaling rationale as `recstack store`: full-size tables are
    // GBs; a scaled model keeps a real-numerics serving run
    // interactive while every subsystem still exercises.
    ModelOptions opts;
    opts.tableScale = 0.05;
    SweepCache sweep(allPlatforms(), opts);
    QueryScheduler sched(&sweep, {1, 16, 64, 256, 1024});
    ServingEngine engine(&sched, id, 0);

    EngineConfig cfg;
    cfg.numWorkers = 4;
    cfg.maxBatch = batch;
    cfg.arrivalQps = 4000.0;
    cfg.simSeconds = 0.25;
    cfg.execMode = ExecMode::kNumericOnly;
    // Width 2 so intra-op pool chunks show up in the trace alongside
    // the inter-op worker lanes.
    cfg.numThreads = 2;
    cfg.captureTrace = true;

    // Measure this run alone: both sinks are process-global and
    // cumulative.
    obs::MetricsRegistry::global().reset();
    obs::TraceBuffer::global().clear();

    const EngineResult result = engine.run(cfg);

    std::printf("%s @ maxBatch %lld: %d workers, %llu batches, %llu "
                "samples served\n",
                modelName(id), static_cast<long long>(batch),
                cfg.numWorkers,
                static_cast<unsigned long long>(result.batchesExecuted),
                static_cast<unsigned long long>(
                    result.aggregate.samplesServed));

    const MetricsSnapshotCross check =
        crossCheckLatency(result.aggregate);
    std::printf("query latency: exact p50 %s / p95 %s / p99 %s\n",
                TextTable::fmtSeconds(result.aggregate.p50Latency).c_str(),
                TextTable::fmtSeconds(result.aggregate.p95Latency).c_str(),
                TextTable::fmtSeconds(result.aggregate.p99Latency).c_str());
    std::printf("  histogram  p50 %s / p95 %s / p99 %s "
                "(1 ms buckets, %s exact within one bucket)\n",
                TextTable::fmtSeconds(check.p50).c_str(),
                TextTable::fmtSeconds(check.p95).c_str(),
                TextTable::fmtSeconds(check.p99).c_str(),
                check.agrees ? "agrees with" : "DIVERGES from");
    if (result.storeShared) {
        std::printf("store: %llu lookups, hit rate %s, far-tier "
                    "fetches %llu\n",
                    static_cast<unsigned long long>(
                        result.storeStats.total.lookups),
                    TextTable::fmtPercent(result.storeStats.hitRate())
                        .c_str(),
                    static_cast<unsigned long long>(
                        result.storeStats.total.farFetches));
    }

    const obs::TraceSnapshot trace = obs::TraceBuffer::global().snapshot();
    std::printf("trace: %zu spans captured, %llu dropped "
                "(buffer capacity %zu)\n",
                trace.spans.size(),
                static_cast<unsigned long long>(trace.dropped),
                obs::TraceBuffer::global().capacity());
    if (!trace_path.empty()) {
        std::string error;
        if (!obs::writeChromeTrace(trace_path, trace, &error)) {
            std::printf("error: %s\n", error.c_str());
            return 1;
        }
        std::printf("wrote %s — open in chrome://tracing or "
                    "https://ui.perfetto.dev\n",
                    trace_path.c_str());
    }
    if (metrics) {
        std::printf("\n%s",
                    obs::MetricsRegistry::global()
                        .snapshot()
                        .renderText()
                        .c_str());
    }
    return check.agrees ? 0 : 1;
}

/**
 * Close the heterogeneous-serving loop interactively: offer the model
 * a rate only the CPU-pool + GPU-lane split can hold, then let the
 * hill climber walk the routing-threshold grid reading its p99
 * feedback from the live serve.query_latency_seconds histogram. The
 * per-epoch measurements, the tuned threshold, and the final split
 * are printed (or emitted as JSON with --json). See
 * docs/scheduling.md.
 */
int
cmdHetero(const std::string& model_name, bool json)
{
    const ModelId id = modelFromName(model_name);
    // Same scaling rationale as `recstack obs`: scaled tables keep the
    // multi-epoch tuning loop interactive while the full virtual-time
    // serving path (batch queue, GPU lane, metrics feedback) still
    // exercises.
    ModelOptions opts;
    opts.tableScale = 0.05;
    SweepCache sweep(allPlatforms(), opts);
    QueryScheduler sched(&sweep, {1, 16, 64, 256, 1024});
    const size_t cpu_idx = 0;  // Broadwell worker pool
    const size_t gpu_idx = 3;  // T4 accelerator lane
    ServingEngine engine(&sched, id, cpu_idx);

    EngineConfig cfg;
    cfg.numWorkers = 2;
    cfg.maxBatch = 256;
    cfg.maxWaitSeconds = 1e-3;
    cfg.simSeconds = 0.1;
    cfg.heterogeneous = true;
    cfg.gpuPlatformIdx = gpu_idx;
    // Match the lane's accumulation to the front queue: GPU service is
    // near-linear in batch past the amortization knee, so batching
    // beyond the front queue's cap stretches the tail for nothing.
    cfg.gpuLane.maxBatch = cfg.maxBatch;
    cfg.gpuLane.maxWaitSeconds = cfg.maxWaitSeconds;

    // SLA = 3x the worse of the two platforms' half-load tails; the
    // tuning rate is 80% of the combined capacity estimate, past the
    // CPU pool's knee so the threshold choice actually matters (same
    // recipe bench_ext_hetero validates against exhaustive search).
    const double cap_cpu = cfg.numWorkers * 256.0 /
                           sched.latency(id, cpu_idx, 256);
    const double cap_gpu = 256.0 / sched.latency(id, gpu_idx, 256);
    ServingEngine gpu_engine(&sched, id, gpu_idx);
    EngineConfig probe = cfg;
    probe.heterogeneous = false;
    probe.arrivalQps = 0.5 * cap_cpu;
    const double cpu_tail = engine.run(probe).aggregate.p99Latency;
    probe.arrivalQps = 0.5 * cap_gpu;
    const double gpu_tail = gpu_engine.run(probe).aggregate.p99Latency;
    const double sla = 3.0 * std::max(cpu_tail, gpu_tail);
    cfg.arrivalQps = 0.8 * (cap_cpu + cap_gpu);

    HillClimbConfig tune;
    tune.slaSeconds = sla;
    tune.thresholdGrid = {16, 64, 128, 256,
                          QueryScheduler::kNoGpuThreshold};
    tune.startIndex = 2;
    tune.epochSeconds = cfg.simSeconds;
    const HillClimbResult hc =
        hillClimbThreshold(tune, [&](int64_t threshold) {
            sched.setGpuThreshold(id, threshold);
            engine.run(cfg);
        });

    // Re-serve at the tuned threshold for the final split report.
    sched.setGpuThreshold(id, hc.bestThreshold);
    const EngineResult tuned = engine.run(cfg);
    const double gpu_share =
        tuned.aggregate.samplesServed > 0
            ? static_cast<double>(tuned.gpuLaneStats.samplesServed) /
                  static_cast<double>(tuned.aggregate.samplesServed)
            : 0.0;
    const auto threshold_label = [](int64_t t) {
        return t == QueryScheduler::kNoGpuThreshold
                   ? std::string("none")
                   : std::to_string(t);
    };
    // JSON encodes "route nothing" as -1: kNoGpuThreshold is int64
    // max, which does not survive a round trip through a JSON double.
    const auto threshold_json = [](int64_t t) {
        return t == QueryScheduler::kNoGpuThreshold
                   ? static_cast<long long>(-1)
                   : static_cast<long long>(t);
    };

    if (json) {
        std::printf("{\n  \"model\": \"%s\",\n", modelName(id));
        std::printf("  \"slaSeconds\": %.6e,\n", sla);
        std::printf("  \"offeredQps\": %.1f,\n", cfg.arrivalQps);
        std::printf("  \"history\": [\n");
        for (size_t i = 0; i < hc.history.size(); ++i) {
            const ThresholdMeasurement& m = hc.history[i];
            std::printf("    {\"threshold\": %lld, \"qps\": %.1f, "
                        "\"p99\": %.6e, \"feasible\": %s}%s\n",
                        threshold_json(m.threshold), m.qps, m.p99,
                        m.feasible ? "true" : "false",
                        i + 1 < hc.history.size() ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"epochs\": %d,\n", hc.epochs);
        std::printf("  \"anyFeasible\": %s,\n",
                    hc.anyFeasible ? "true" : "false");
        std::printf("  \"bestThreshold\": %lld,\n",
                    threshold_json(hc.bestThreshold));
        std::printf("  \"bestQps\": %.1f,\n", hc.best.qps);
        std::printf("  \"bestP99\": %.6e,\n", hc.best.p99);
        std::printf("  \"gpuSampleShare\": %.4f,\n", gpu_share);
        std::printf("  \"deferredTickets\": %llu\n",
                    static_cast<unsigned long long>(
                        tuned.deferredTickets));
        std::printf("}\n");
        return 0;
    }

    std::printf("%s: %d Broadwell workers + T4 lane, offered %s qps, "
                "SLA p99 <= %s\n\n",
                modelName(id), cfg.numWorkers,
                TextTable::fmt(cfg.arrivalQps, 0).c_str(),
                TextTable::fmtSeconds(sla).c_str());
    TextTable table({"epoch", "threshold", "served qps", "p99", "SLA"});
    for (size_t i = 0; i < hc.history.size(); ++i) {
        const ThresholdMeasurement& m = hc.history[i];
        table.addRow({std::to_string(i + 1),
                      threshold_label(m.threshold),
                      TextTable::fmt(m.qps, 0),
                      TextTable::fmtSeconds(m.p99),
                      m.feasible ? "ok" : "MISS"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("tuned threshold %s after %d epochs: %s qps at p99 %s "
                "(%s of samples on the GPU lane, %llu deferred "
                "batches)\n",
                threshold_label(hc.bestThreshold).c_str(), hc.epochs,
                TextTable::fmt(hc.best.qps, 0).c_str(),
                TextTable::fmtSeconds(hc.best.p99).c_str(),
                TextTable::fmtPercent(gpu_share).c_str(),
                static_cast<unsigned long long>(tuned.deferredTickets));
    if (!hc.anyFeasible) {
        std::printf("no threshold on the grid held the SLA; reported "
                    "point has the least-bad tail\n");
    }
    return 0;
}

/**
 * Near-memory offload report (docs/pim.md): price one (model, batch)
 * on Broadwell, the T4, and the UPMEM-style PIM platform, break the
 * PIM time into host / dispatch / upload / DPU / download phases, and
 * sweep rank count and tasklets-per-DPU. The host share is simulated
 * once; sweep points re-price only the analytical offload, so the
 * whole report costs three platform simulations.
 */
int
cmdPim(const std::string& model_name, int64_t batch, bool json)
{
    const ModelId id = modelFromName(model_name);
    Characterizer c;
    uint64_t input_bytes = 0;
    size_t input_blobs = 0;
    const std::vector<KernelProfile> profiles =
        c.profiles(id, batch, &input_bytes, &input_blobs);
    std::vector<KernelProfile> offload;
    for (const KernelProfile& kp : profiles) {
        if (PimModel::offloadable(kp)) {
            offload.push_back(kp);
        }
    }

    const PimConfig base = upmemPimConfig();
    const RunResult cpu = simulateProfiles(
        profiles, makeCpuPlatform(broadwellConfig()), id, batch,
        input_bytes, input_blobs);
    const RunResult gpu = simulateProfiles(
        profiles, makeGpuPlatform(t4Config()), id, batch, input_bytes,
        input_blobs);
    const RunResult pim = simulateProfiles(
        profiles, makePimPlatform(base), id, batch, input_bytes,
        input_blobs);
    const double host_seconds = pim.seconds - pim.pim.offloadSeconds;

    const std::vector<int> rank_points = {1, 2, 4, 8, 16, 32, 64};
    const std::vector<int> tasklet_points = {1, 2, 4, 8, 11, 16, 24};
    struct SweepRow {
        int value;
        PimRunResult r;
    };
    std::vector<SweepRow> rank_rows;
    for (int ranks : rank_points) {
        PimConfig cfg = base;
        cfg.ranks = ranks;
        PimModel m(cfg);
        rank_rows.push_back({ranks, m.simulateOffload(offload)});
    }
    std::vector<SweepRow> tasklet_rows;
    for (int tasklets : tasklet_points) {
        PimConfig cfg = base;
        cfg.taskletsPerDpu = tasklets;
        PimModel m(cfg);
        tasklet_rows.push_back({tasklets, m.simulateOffload(offload)});
    }

    if (json) {
        std::printf("{\n  \"model\": \"%s\",\n", modelName(id));
        std::printf("  \"batch\": %lld,\n",
                    static_cast<long long>(batch));
        std::printf("  \"ranks\": %d,\n", base.ranks);
        std::printf("  \"cpuSeconds\": %.6e,\n", cpu.seconds);
        std::printf("  \"gpuSeconds\": %.6e,\n", gpu.seconds);
        std::printf("  \"pimSeconds\": %.6e,\n", pim.seconds);
        std::printf("  \"pimHostSeconds\": %.6e,\n", host_seconds);
        std::printf("  \"pimOffloadSeconds\": %.6e,\n",
                    pim.pim.offloadSeconds);
        std::printf("  \"pimUploadSeconds\": %.6e,\n",
                    pim.pim.uploadSeconds);
        std::printf("  \"pimDpuSeconds\": %.6e,\n", pim.pim.dpuSeconds);
        std::printf("  \"pimDownloadSeconds\": %.6e,\n",
                    pim.pim.downloadSeconds);
        std::printf("  \"offloadedOps\": %llu,\n",
                    static_cast<unsigned long long>(
                        pim.pim.offloadedOps));
        std::printf("  \"offloadedLookups\": %llu,\n",
                    static_cast<unsigned long long>(pim.pim.lookups));
        std::printf("  \"speedupVsCpu\": %.3f,\n",
                    pim.seconds > 0.0 ? cpu.seconds / pim.seconds : 0.0);
        std::printf("  \"rankSweep\": [\n");
        for (size_t i = 0; i < rank_rows.size(); ++i) {
            const SweepRow& row = rank_rows[i];
            std::printf("    {\"ranks\": %d, \"seconds\": %.6e, "
                        "\"transferFraction\": %.4f}%s\n",
                        row.value, host_seconds + row.r.offloadSeconds,
                        row.r.transferFraction(),
                        i + 1 < rank_rows.size() ? "," : "");
        }
        std::printf("  ],\n  \"taskletSweep\": [\n");
        for (size_t i = 0; i < tasklet_rows.size(); ++i) {
            const SweepRow& row = tasklet_rows[i];
            std::printf("    {\"tasklets\": %d, \"seconds\": %.6e}%s\n",
                        row.value,
                        host_seconds + row.r.offloadSeconds,
                        i + 1 < tasklet_rows.size() ? "," : "");
        }
        std::printf("  ]\n}\n");
        return 0;
    }

    std::printf("%s batch %lld on the three platforms:\n", modelName(id),
                static_cast<long long>(batch));
    TextTable platforms({"platform", "latency", "speedup vs BDW",
                         "dominant op"});
    platforms.addRow({cpu.platformName,
                      TextTable::fmtSeconds(cpu.seconds), "1.00x",
                      cpu.breakdown.dominantType()});
    platforms.addRow({gpu.platformName,
                      TextTable::fmtSeconds(gpu.seconds),
                      TextTable::fmtSpeedup(cpu.seconds / gpu.seconds),
                      gpu.breakdown.dominantType()});
    platforms.addRow({pim.platformName,
                      TextTable::fmtSeconds(pim.seconds),
                      TextTable::fmtSpeedup(cpu.seconds / pim.seconds),
                      pim.breakdown.dominantType()});
    std::printf("%s\n", platforms.render().c_str());

    std::printf("PIM phase split (%llu offloaded ops, %llu lookups):\n",
                static_cast<unsigned long long>(pim.pim.offloadedOps),
                static_cast<unsigned long long>(pim.pim.lookups));
    TextTable phases({"phase", "seconds", "share"});
    const auto share = [&](double s) {
        return TextTable::fmtPercent(
            pim.seconds > 0.0 ? s / pim.seconds : 0.0);
    };
    phases.addRow({"host (FC/GRU/dataload)",
                   TextTable::fmtSeconds(host_seconds),
                   share(host_seconds)});
    phases.addRow({"dispatch",
                   TextTable::fmtSeconds(pim.pim.dispatchSeconds),
                   share(pim.pim.dispatchSeconds)});
    phases.addRow({"index upload",
                   TextTable::fmtSeconds(pim.pim.uploadSeconds),
                   share(pim.pim.uploadSeconds)});
    phases.addRow({"DPU pooling",
                   TextTable::fmtSeconds(pim.pim.dpuSeconds),
                   share(pim.pim.dpuSeconds)});
    phases.addRow({"result download",
                   TextTable::fmtSeconds(pim.pim.downloadSeconds),
                   share(pim.pim.downloadSeconds)});
    std::printf("%s\n", phases.render().c_str());

    std::printf("rank sweep (tasklets/DPU = %d):\n", base.taskletsPerDpu);
    TextTable ranks({"ranks", "latency", "speedup vs BDW",
                     "transfer share"});
    for (const SweepRow& row : rank_rows) {
        const double total = host_seconds + row.r.offloadSeconds;
        ranks.addRow({std::to_string(row.value),
                      TextTable::fmtSeconds(total),
                      TextTable::fmtSpeedup(cpu.seconds / total),
                      TextTable::fmtPercent(row.r.transferFraction())});
    }
    std::printf("%s\n", ranks.render().c_str());

    std::printf("tasklet sweep (ranks = %d):\n", base.ranks);
    TextTable tasklets({"tasklets/DPU", "latency", "speedup vs BDW"});
    for (const SweepRow& row : tasklet_rows) {
        const double total = host_seconds + row.r.offloadSeconds;
        tasklets.addRow({std::to_string(row.value),
                         TextTable::fmtSeconds(total),
                         TextTable::fmtSpeedup(cpu.seconds / total)});
    }
    std::printf("%s", tasklets.render().c_str());
    return 0;
}

/**
 * Cluster-scale serving demo: route a diurnally modulated, Zipf-skewed
 * query stream across an M-node fleet under each routing policy, then
 * let the autoscaler walk the fleet size against a p99 SLA read from
 * the merged per-node latency histograms. See docs/fleet.md.
 */
int
cmdFleet(const std::string& model_name, int nodes, bool json)
{
    if (nodes < 1 || nodes > 64) {
        std::fprintf(stderr, "--nodes must be in [1, 64]\n");
        return 2;
    }
    const ModelId id = modelFromName(model_name);
    // Scaled tables keep an M-node multi-policy sweep interactive;
    // the virtual-time pricing path is the full one (see `obs`).
    ModelOptions opts;
    opts.tableScale = 0.05;
    SweepCache sweep(allPlatforms(), opts);
    QueryScheduler sched(&sweep, {1, 16, 64, 256, 1024});
    fleet::FleetSimulator sim(&sched, id, 0);  // Broadwell nodes

    fleet::FleetConfig cfg;
    cfg.numNodes = nodes;
    cfg.workersPerNode = 2;
    cfg.maxBatch = 64;
    cfg.maxWaitSeconds = 1e-3;
    cfg.simSeconds = 0.2;
    cfg.placement.kind = fleet::PlacementKind::kRowPartitioned;
    cfg.placement.replicationFactor = 1;

    // Offer ~60% of the fleet's batch-64 capacity — including the
    // placement surcharge, which dominates for lookup-heavy models —
    // swinging over one full diurnal cycle (trough at half the peak)
    // so the run exercises the modulated clock.
    const fleet::PlacementView view(
        cfg.placement, nodes,
        sweep.characterizer().model(id).workload);
    const double cap_node =
        cfg.workersPerNode * 64.0 /
        (sched.latency(id, 0, 64) +
         64.0 * view.remoteSecondsPerSample());
    fleet::TrafficConfig traffic;
    traffic.baseQps = 0.6 * static_cast<double>(nodes) * cap_node;
    traffic.numUsers = 2000000;
    traffic.userZipf = 0.9;
    traffic.envelope = RateEnvelope::diurnal(cfg.simSeconds, 0.5);
    traffic.seed = 42;

    const fleet::RoutePolicy policies[] = {
        fleet::RoutePolicy::kRoundRobin,
        fleet::RoutePolicy::kConsistentHash,
        fleet::RoutePolicy::kPowerOfTwo,
    };
    fleet::FleetResult results[3];
    for (int p = 0; p < 3; ++p) {
        cfg.policy = policies[p];
        results[p] = sim.simulate(cfg, traffic);
    }
    const fleet::FleetResult& p2c = results[2];

    // Autoscale against a p99 SLA set 25% above the p2c tail at the
    // requested size, so the walk has a feasible target to find.
    fleet::AutoscalerConfig asc;
    asc.slaP99Seconds = 1.25 * p2c.mergedP99;
    asc.minNodes = 1;
    asc.maxNodes = std::max(2 * nodes, nodes + 2);
    asc.maxEpochs = 12;
    cfg.policy = fleet::RoutePolicy::kPowerOfTwo;
    const fleet::AutoscalerResult scaled = fleet::autoscale(
        asc, [&](int n, int /*epoch*/) {
            fleet::FleetConfig epoch_cfg = cfg;
            epoch_cfg.numNodes = n;
            return sim.simulate(epoch_cfg, traffic).mergedHistogram;
        });

    if (json) {
        std::printf("{\n  \"model\": \"%s\",\n", modelName(id));
        std::printf("  \"nodes\": %d,\n", nodes);
        std::printf("  \"offeredQps\": %.1f,\n", traffic.baseQps);
        std::printf("  \"remoteSecondsPerSample\": %.6e,\n",
                    p2c.remoteSecondsPerSample);
        std::printf("  \"nodeTableBytes\": %llu,\n",
                    static_cast<unsigned long long>(
                        p2c.nodeTableBytes));
        std::printf("  \"policies\": [\n");
        for (int p = 0; p < 3; ++p) {
            const fleet::FleetResult& r = results[p];
            std::printf(
                "    {\"policy\": \"%s\", \"servedQps\": %.1f, "
                "\"meanLatency\": %.6e, \"p99\": %.6e, "
                "\"mergedP99\": %.6e, \"imbalance\": %.4f}%s\n",
                fleet::routePolicyName(policies[p]),
                r.aggregate.throughputQps, r.aggregate.meanLatency,
                r.aggregate.p99Latency, r.mergedP99,
                r.routedImbalance, p + 1 < 3 ? "," : "");
        }
        std::printf("  ],\n");
        std::printf("  \"autoscaler\": {\n");
        std::printf("    \"slaP99Seconds\": %.6e,\n",
                    asc.slaP99Seconds);
        std::printf("    \"history\": [\n");
        for (size_t i = 0; i < scaled.history.size(); ++i) {
            const fleet::AutoscalerStep& s = scaled.history[i];
            std::printf("      {\"nodes\": %d, \"p99\": %.6e, "
                        "\"violated\": %s}%s\n",
                        s.nodes, s.p99, s.violated ? "true" : "false",
                        i + 1 < scaled.history.size() ? "," : "");
        }
        std::printf("    ],\n");
        std::printf("    \"nodes\": %d,\n", scaled.nodes);
        std::printf("    \"feasible\": %s,\n",
                    scaled.feasible ? "true" : "false");
        std::printf("    \"p99\": %.6e,\n", scaled.p99);
        std::printf("    \"epochsUsed\": %d\n", scaled.epochsUsed);
        std::printf("  }\n}\n");
        return 0;
    }

    std::printf("%s fleet: %d nodes x %d Broadwell workers, offered "
                "%s qps (diurnal, trough 50%%), row-partitioned "
                "store (+%s/sample remote)\n\n",
                modelName(id), nodes, cfg.workersPerNode,
                TextTable::fmt(traffic.baseQps, 0).c_str(),
                TextTable::fmtSeconds(
                    p2c.remoteSecondsPerSample).c_str());
    TextTable table({"policy", "served qps", "mean", "p99 (exact)",
                     "p99 (merged hist)", "imbalance"});
    for (int p = 0; p < 3; ++p) {
        const fleet::FleetResult& r = results[p];
        table.addRow({fleet::routePolicyName(policies[p]),
                      TextTable::fmt(r.aggregate.throughputQps, 0),
                      TextTable::fmtSeconds(r.aggregate.meanLatency),
                      TextTable::fmtSeconds(r.aggregate.p99Latency),
                      TextTable::fmtSeconds(r.mergedP99),
                      TextTable::fmt(r.routedImbalance, 3)});
    }
    std::printf("%s\n", table.render().c_str());

    std::printf("autoscaler (SLA p99 <= %s, p2c):\n",
                TextTable::fmtSeconds(asc.slaP99Seconds).c_str());
    TextTable walk({"epoch", "nodes", "fleet p99", "SLA"});
    for (size_t i = 0; i < scaled.history.size(); ++i) {
        const fleet::AutoscalerStep& s = scaled.history[i];
        walk.addRow({std::to_string(i + 1), std::to_string(s.nodes),
                     TextTable::fmtSeconds(s.p99),
                     s.violated ? "MISS" : "ok"});
    }
    std::printf("%s", walk.render().c_str());
    std::printf("settled at %d node%s after %d epochs (p99 %s, %s)\n",
                scaled.nodes, scaled.nodes == 1 ? "" : "s",
                scaled.epochsUsed,
                TextTable::fmtSeconds(scaled.p99).c_str(),
                scaled.feasible ? "feasible" : "INFEASIBLE");
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        return usage();
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage();
        return 0;
    }
    if (cmd == "models") {
        return cmdModels();
    }
    if (cmd == "platforms") {
        return cmdPlatforms();
    }
    if (cmd == "run" && argc >= 4) {
        return cmdRun(argv[2], std::atoll(argv[3]),
                      argc > 4 ? argv[4] : "");
    }
    if (cmd == "sweep" && argc >= 3) {
        const bool csv = argc > 3 && std::strcmp(argv[3], "--csv") == 0;
        return cmdSweep(argv[2], csv);
    }
    if (cmd == "topdown" && argc >= 5) {
        return cmdTopdown(argv[2], std::atoll(argv[3]), argv[4]);
    }
    if (cmd == "schedule" && argc >= 4) {
        return cmdSchedule(argv[2], std::atof(argv[3]));
    }
    if (cmd == "plan" && argc >= 4) {
        const bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;
        return cmdPlan(argv[2], std::atoll(argv[3]), json);
    }
    if (cmd == "store" && argc >= 4) {
        const bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;
        return cmdStore(argv[2], std::atoll(argv[3]), json);
    }
    if (cmd == "obs" && argc >= 4) {
        std::string trace_path;
        bool metrics = false;
        for (int i = 4; i < argc; ++i) {
            if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
                trace_path = argv[++i];
            } else if (std::strcmp(argv[i], "--metrics") == 0) {
                metrics = true;
            } else {
                return usage();
            }
        }
        return cmdObs(argv[2], std::atoll(argv[3]), trace_path, metrics);
    }
    if (cmd == "hetero" && argc >= 3) {
        const bool json = argc > 3 && std::strcmp(argv[3], "--json") == 0;
        return cmdHetero(argv[2], json);
    }
    if (cmd == "pim" && argc >= 4) {
        const bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;
        return cmdPim(argv[2], std::atoll(argv[3]), json);
    }
    if (cmd == "fleet" && argc >= 3) {
        int nodes = 4;
        bool json = false;
        for (int i = 3; i < argc; ++i) {
            if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
                nodes = std::atoi(argv[++i]);
            } else if (std::strcmp(argv[i], "--json") == 0) {
                json = true;
            } else {
                return usage();
            }
        }
        return cmdFleet(argv[2], nodes, json);
    }
    if (cmd == "record" && argc >= 5) {
        return cmdRecord(argv[2], std::atoll(argv[3]), argv[4]);
    }
    if (cmd == "replay" && argc >= 3) {
        return cmdReplay(argv[2], argc > 3 ? argv[3] : "");
    }
    if (cmd == "custom" && argc >= 4) {
        return cmdCustom(argv[2], std::atoll(argv[3]));
    }
    return usage();
}
